"""Command-line interface: debug the bundled workloads and rerun figures.

Usage (after ``pip install -e .`` / ``python setup.py develop``)::

    python -m repro.cli list
    python -m repro.cli debug gan --algorithm decision_trees --budget 200
    python -m repro.cli debug ml --algorithm shortcut
    python -m repro.cli debug dbsherlock --anomaly cpu_saturation
    python -m repro.cli synth --scenario disjunction --pipelines 5

``debug`` runs BugDoc on one of the Section 5.3 workloads and prints
the asserted minimal definitive root causes next to the planted ground
truth.  ``synth`` generates a synthetic suite and reports FindOne
metrics for the chosen algorithm.
"""

from __future__ import annotations

import argparse
import sys
import time

from .core import Algorithm, BugDoc, DDTConfig, DebugSession
from .eval import format_table, match_synthetic, score_find_one
from .synth import Scenario, make_suite
from .workloads import data_polygamy, dbsherlock, gan_training, ml_pipeline

WORKLOADS = ("ml", "data_polygamy", "gan", "dbsherlock")


def _algorithm(name: str) -> Algorithm:
    try:
        return Algorithm(name)
    except ValueError:
        valid = ", ".join(a.value for a in Algorithm)
        raise SystemExit(f"unknown algorithm {name!r}; choose from: {valid}")


def _build_debug_target(args):
    """Return (session factory output, true causes, label)."""
    if args.workload == "ml":
        executor = ml_pipeline.make_executor()
        history = ml_pipeline.table1_history(executor)
        session = DebugSession(
            executor, ml_pipeline.make_space(), history=history
        )
        return session, [ml_pipeline.true_cause()], "ml-classification"
    if args.workload == "data_polygamy":
        session = DebugSession(
            data_polygamy.make_executor(), data_polygamy.make_space()
        )
        return session, data_polygamy.true_causes(), "data-polygamy"
    if args.workload == "gan":
        session = DebugSession(
            gan_training.make_executor(), gan_training.make_space()
        )
        return session, gan_training.true_causes(), "gan-training"
    case = dbsherlock.build_case(args.anomaly, seed=args.seed)
    session = case.make_session(budget=args.budget)
    return session, case.true_causes, f"dbsherlock/{args.anomaly}"


def cmd_list(args) -> int:
    rows = [
        ["ml", "Figure 1 classification pipeline (library-version bug)"],
        ["data_polygamy", "crash debugging, 12 parameters (Section 5.3)"],
        ["gan", "mode-collapse hunting, 6x5 parameters (Section 5.3)"],
        ["dbsherlock", "OLTP anomalies, historical mode (Section 5.3)"],
    ]
    print(format_table(["workload", "description"], rows, title="Workloads"))
    print()
    print("Algorithms: " + ", ".join(a.value for a in Algorithm))
    return 0


def cmd_debug(args) -> int:
    session, true_causes, label = _build_debug_target(args)
    if args.budget and session.budget.limit is None:
        session.budget._limit = args.budget  # noqa: SLF001 - CLI convenience
    algorithm = _algorithm(args.algorithm)
    bugdoc = BugDoc(session=session, seed=args.seed)
    started = time.perf_counter()
    if algorithm in (Algorithm.SHORTCUT, Algorithm.STACKED_SHORTCUT):
        report = bugdoc.find_one(algorithm)
    else:
        report = bugdoc.find_all(
            algorithm,
            ddt_config=DDTConfig(
                find_all=True, tests_per_suspect=args.tests_per_suspect,
                seed=args.seed,
            ),
        )
    elapsed = time.perf_counter() - started

    print(f"workload: {label}")
    print(f"algorithm: {algorithm.value}")
    print(f"instances executed: {report.instances_executed}  "
          f"({elapsed:.2f}s wall)")
    print("\nasserted minimal definitive root causes:")
    if report.causes:
        for cause in report.causes:
            print(f"  - {cause}")
    else:
        print("  (none)")
    print("\nplanted ground truth:")
    for cause in true_causes:
        print(f"  - {cause}")
    return 0


def cmd_synth(args) -> int:
    scenario = Scenario(args.scenario)
    suite = make_suite(
        scenario,
        args.pipelines,
        seed=args.seed,
        min_parameters=3,
        max_parameters=7,
        min_values=5,
        max_values=10,
    )
    algorithm = _algorithm(args.algorithm)
    reports = []
    budgets = []
    import random as random_module

    for index, pipeline in enumerate(suite):
        rng = random_module.Random(args.seed + index)
        session = DebugSession(
            pipeline.oracle,
            pipeline.space,
            history=pipeline.initial_history(rng),
        )
        bugdoc = BugDoc(session=session, seed=args.seed + index)
        if algorithm in (Algorithm.SHORTCUT, Algorithm.STACKED_SHORTCUT):
            result = bugdoc.find_one(algorithm)
        else:
            result = bugdoc.find_one(
                algorithm, ddt_config=DDTConfig(find_all=False, seed=index)
            )
        budgets.append(result.instances_executed)
        reports.append(
            match_synthetic(
                result.causes,
                pipeline.true_causes,
                pipeline.space,
                pipeline.oracle,
                seed=index,
            )
        )
    prf = score_find_one(reports)
    print(f"scenario: {scenario.value}  pipelines: {len(suite)}")
    print(f"algorithm: {algorithm.value}")
    print(f"mean instances executed: {sum(budgets) / len(budgets):.1f}")
    print(f"FindOne {prf}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="BugDoc reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and algorithms")

    debug = sub.add_parser("debug", help="debug a bundled workload")
    debug.add_argument("workload", choices=WORKLOADS)
    debug.add_argument(
        "--algorithm", default="combined", help="shortcut | stacked_shortcut | decision_trees | combined"
    )
    debug.add_argument("--budget", type=int, default=None)
    debug.add_argument("--seed", type=int, default=0)
    debug.add_argument("--tests-per-suspect", type=int, default=24)
    debug.add_argument(
        "--anomaly",
        default="cpu_saturation",
        choices=dbsherlock.ANOMALY_CLASSES,
        help="dbsherlock anomaly class",
    )

    synth = sub.add_parser("synth", help="run a synthetic FindOne experiment")
    synth.add_argument(
        "--scenario",
        default="single",
        choices=[s.value for s in Scenario],
    )
    synth.add_argument("--pipelines", type=int, default=5)
    synth.add_argument("--algorithm", default="decision_trees")
    synth.add_argument("--seed", type=int, default=0)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list(args)
    if args.command == "debug":
        return cmd_debug(args)
    return cmd_synth(args)


if __name__ == "__main__":
    sys.exit(main())
