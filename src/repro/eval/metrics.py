"""Precision, recall, and F-measure exactly as Section 5 defines them.

The paper scores an algorithm ``A`` over a set ``UCP`` of pipelines,
each with true causes ``R(CP)`` and assertions ``A(CP)``:

FindOne:
    precision = sum_CP [A(CP) hits R(CP)]
                / (sum_CP [A(CP) hits R(CP)] + |A(CP) - R(CP)|)
    recall    = sum_CP [A(CP) hits R(CP)] / |UCP|

FindAll:
    precision = sum_CP |A(CP) n R(CP)| / sum_CP |A(CP)|
    recall    = sum_CP |A(CP) n R(CP)| / sum_CP |R(CP)|

plus conciseness diagnostics (Figure 4): parameters per asserted cause
and log10 of asserted-per-actual cause counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Sequence

from .ground_truth import MatchReport

__all__ = ["PRF", "Conciseness", "score_find_one", "score_find_all", "conciseness"]


@dataclass(frozen=True)
class PRF:
    """A precision / recall / F-measure triple."""

    precision: float
    recall: float

    @property
    def f_measure(self) -> float:
        if self.precision + self.recall == 0.0:
            return 0.0
        return 2.0 * self.precision * self.recall / (self.precision + self.recall)

    def __str__(self) -> str:
        return (
            f"P={self.precision:.3f} R={self.recall:.3f} F={self.f_measure:.3f}"
        )


def score_find_one(reports: Sequence[MatchReport]) -> PRF:
    """FindOne scoring over a pipeline suite (Figure 2 formulas)."""
    if not reports:
        return PRF(0.0, 0.0)
    hits = sum(1 for report in reports if report.found_at_least_one)
    false_positives = sum(report.n_false_positives for report in reports)
    denominator = hits + false_positives
    precision = hits / denominator if denominator else 0.0
    recall = hits / len(reports)
    return PRF(precision, recall)


def score_find_all(reports: Sequence[MatchReport]) -> PRF:
    """FindAll scoring over a pipeline suite (Figure 3 formulas)."""
    if not reports:
        return PRF(0.0, 0.0)
    intersections = sum(len(report.correct_asserted) for report in reports)
    asserted = sum(
        len(report.correct_asserted) + len(report.incorrect_asserted)
        for report in reports
    )
    actual = sum(report.n_true for report in reports)
    precision = intersections / asserted if asserted else 0.0
    recall = (
        sum(len(report.matched_true) for report in reports) / actual
        if actual
        else 0.0
    )
    return PRF(precision, recall)


@dataclass
class Conciseness:
    """Figure 4 statistics.

    Attributes:
        parameters_per_cause: average predicate-parameter count per
            asserted root cause (Figure 4a).
        log_asserted_per_actual: average log10(|A(CP)| / |R(CP)|)
            (Figure 4b); 0.0 means as many assertions as actual causes.
    """

    parameters_per_cause: float = 0.0
    log_asserted_per_actual: float = 0.0
    n_causes: int = 0
    n_pipelines: int = 0
    samples: list[int] = field(default_factory=list)


def conciseness(reports: Sequence[MatchReport]) -> Conciseness:
    """Compute the Figure 4 conciseness statistics over a suite."""
    result = Conciseness()
    total_parameters = 0
    total_causes = 0
    log_ratios = []
    for report in reports:
        asserted = list(report.correct_asserted) + list(report.incorrect_asserted)
        for cause in asserted:
            total_parameters += len(cause.parameters)
            total_causes += 1
            result.samples.append(len(cause.parameters))
        if report.n_true > 0:
            ratio = max(len(asserted), 1) / report.n_true
            log_ratios.append(math.log10(ratio))
    result.n_causes = total_causes
    result.n_pipelines = len(reports)
    result.parameters_per_cause = (
        total_parameters / total_causes if total_causes else 0.0
    )
    result.log_asserted_per_actual = (
        sum(log_ratios) / len(log_ratios) if log_ratios else 0.0
    )
    return result
