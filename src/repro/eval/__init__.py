"""Evaluation harness (substrate S19, Section 5).

Ground-truth matching, the paper's precision/recall/F formulas for
FindOne and FindAll, the budget-granting experiment protocol, and text
rendering of each figure.
"""

from .ground_truth import (
    MatchReport,
    failure_coverage,
    match_exact,
    match_soundness,
    match_synthetic,
)
from .harness import (
    FIND_ALL_METHODS,
    FIND_ONE_METHODS,
    BudgetGroup,
    Method,
    MethodRun,
    SuiteResult,
    run_suite,
)
from .metrics import PRF, Conciseness, conciseness, score_find_all, score_find_one
from .reporting import (
    format_table,
    render_conciseness,
    render_prf_figure,
    render_series,
)

__all__ = [
    "BudgetGroup",
    "Conciseness",
    "FIND_ALL_METHODS",
    "FIND_ONE_METHODS",
    "MatchReport",
    "Method",
    "MethodRun",
    "PRF",
    "SuiteResult",
    "conciseness",
    "failure_coverage",
    "format_table",
    "match_exact",
    "match_soundness",
    "match_synthetic",
    "render_conciseness",
    "render_prf_figure",
    "render_series",
    "run_suite",
    "score_find_all",
    "score_find_one",
]
