"""Ground-truth matching: deciding whether an asserted cause is correct.

Two matching regimes, mirroring how the paper scores its two benchmark
families:

* **Exact** (synthetic pipelines, Figures 2-4): an asserted cause is
  correct iff it is semantically equal -- same satisfying set over the
  finite space -- to one of the planted minimal definitive root causes.
  Semantic (not syntactic) equality is essential: ``beta1 = 0.9`` and
  ``beta1 > 0.75`` denote the same set when 0.9 is the only value above
  0.75.

* **Soundness** (real-world pipelines, Figure 7): the paper built
  ground truth by *manually investigating* asserted causes for
  soundness.  We automate that investigation: an asserted cause is
  correct iff it is a definitive root cause of the pipeline's oracle
  (no satisfying instance succeeds) and minimal (no proper predicate
  subset is definitive), checked exhaustively on small satisfying sets
  and by sampling otherwise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Callable, Sequence

from ..core.predicates import Conjunction
from ..core.rootcause import (
    is_definitive_root_cause,
    is_minimal_definitive_root_cause,
)
from ..core.types import Instance, Outcome, ParameterSpace

__all__ = [
    "MatchReport",
    "match_exact",
    "match_synthetic",
    "match_soundness",
    "failure_coverage",
]

Oracle = Callable[[Instance], Outcome]


@dataclass(frozen=True)
class MatchReport:
    """Scoring of one algorithm's assertions against one pipeline's truth.

    Attributes:
        correct_asserted: asserted causes judged correct.
        incorrect_asserted: asserted causes judged incorrect (the false
            positives of the paper's precision formulas).
        matched_true: planted causes matched by some asserted cause
            (the numerator of FindAll recall).
        n_true: number of planted causes.
    """

    correct_asserted: tuple[Conjunction, ...]
    incorrect_asserted: tuple[Conjunction, ...]
    matched_true: tuple[Conjunction, ...]
    n_true: int

    @property
    def found_at_least_one(self) -> bool:
        """FindOne's hit indicator: some asserted cause is a true cause."""
        return bool(self.correct_asserted)

    @property
    def n_false_positives(self) -> int:
        return len(self.incorrect_asserted)


def match_exact(
    asserted: Sequence[Conjunction],
    true_causes: Sequence[Conjunction],
    space: ParameterSpace,
) -> MatchReport:
    """Exact-mode matching: semantic equality over the finite space."""
    correct: list[Conjunction] = []
    incorrect: list[Conjunction] = []
    matched: dict[int, Conjunction] = {}
    for cause in asserted:
        hit = None
        for index, truth in enumerate(true_causes):
            if cause.semantically_equals(truth, space):
                hit = index
                break
        if hit is None:
            incorrect.append(cause)
        else:
            correct.append(cause)
            matched.setdefault(hit, true_causes[hit])
    return MatchReport(
        correct_asserted=tuple(correct),
        incorrect_asserted=tuple(incorrect),
        matched_true=tuple(matched.values()),
        n_true=len(true_causes),
    )


def match_synthetic(
    asserted: Sequence[Conjunction],
    true_causes: Sequence[Conjunction],
    space: ParameterSpace,
    oracle: Oracle,
    max_checks: int = 2000,
    seed: int = 0,
) -> MatchReport:
    """Synthetic-benchmark matching against *all* minimal definitive causes.

    The planted conjunctions are not the only members of ``R(CP)``: a
    planted ``p != v`` cause makes every ``p = w`` (w != v) a minimal
    definitive root cause too, and Shortcut legitimately asserts those.
    Definition 5 is therefore checked directly against the oracle:

    * an asserted cause is **correct** iff it is a minimal definitive
      root cause (semantic equality with a planted cause short-circuits
      the check);
    * a planted cause is **matched** iff some correct asserted cause's
      satisfying region is contained in the planted cause's region --
      that assertion identifies (at least a slice of) that bug.

    Large satisfying sets are verified by sampling ``max_checks``
    instances, mirroring the finite testing any evaluator must do.
    """
    rng = random.Random(seed)
    correct: list[Conjunction] = []
    incorrect: list[Conjunction] = []
    for cause in asserted:
        if cause.is_trivial():
            incorrect.append(cause)
            continue
        if any(cause.semantically_equals(truth, space) for truth in true_causes):
            correct.append(cause)
            continue
        if is_minimal_definitive_root_cause(
            cause, space, oracle, max_checks=max_checks, rng=rng
        ):
            correct.append(cause)
        else:
            incorrect.append(cause)

    matched: list[Conjunction] = []
    for truth in true_causes:
        for cause in correct:
            if truth.subsumes(cause, space):
                matched.append(truth)
                break
    return MatchReport(
        correct_asserted=tuple(correct),
        incorrect_asserted=tuple(incorrect),
        matched_true=tuple(matched),
        n_true=len(true_causes),
    )


def match_soundness(
    asserted: Sequence[Conjunction],
    true_causes: Sequence[Conjunction],
    space: ParameterSpace,
    oracle: Oracle,
    max_checks: int = 3000,
    seed: int = 0,
) -> MatchReport:
    """Soundness-mode matching: automated "manual investigation".

    An asserted cause is correct when it is a definitive *and minimal*
    root cause of the oracle.  A planted cause counts as matched when
    some *sound* asserted cause overlaps it (shares satisfying
    instances): the overlapping sound cause explains (part of) that
    bug's failure region, which is how the paper's investigators credit
    a finding to a bug.
    """
    rng = random.Random(seed)
    correct: list[Conjunction] = []
    incorrect: list[Conjunction] = []
    for cause in asserted:
        if cause.is_trivial():
            incorrect.append(cause)
            continue
        if is_minimal_definitive_root_cause(
            cause, space, oracle, max_checks=max_checks, rng=rng
        ):
            correct.append(cause)
        else:
            incorrect.append(cause)

    matched: list[Conjunction] = []
    for truth in true_causes:
        truth_sets = truth.canonical(space)
        for cause in correct:
            if _boxes_overlap(truth_sets, cause.canonical(space), space):
                matched.append(truth)
                break
    return MatchReport(
        correct_asserted=tuple(correct),
        incorrect_asserted=tuple(incorrect),
        matched_true=tuple(matched),
        n_true=len(true_causes),
    )


def _boxes_overlap(a: dict, b: dict, space: ParameterSpace) -> bool:
    """True when two canonical boxes share at least one instance."""
    for name in set(a) | set(b):
        domain = frozenset(space.domain(name))
        if not (a.get(name, domain) & b.get(name, domain)):
            return False
    return True


def failure_coverage(
    asserted: Sequence[Conjunction],
    failing_instances: Sequence[Instance],
) -> float:
    """Fraction of known failures explained by the asserted causes.

    The operational reading of Figure 7's recall ("BugDoc methods found
    all the parameter-comparator-value triples that would cause the
    execution of the pipelines to fail"): every failure should satisfy
    some asserted cause.
    """
    if not failing_instances:
        return 1.0
    covered = sum(
        1
        for instance in failing_instances
        if any(cause.satisfied_by(instance) for cause in asserted)
    )
    return covered / len(failing_instances)
