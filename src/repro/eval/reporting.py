"""Text rendering of the paper's tables and figures.

The benchmark harness prints each reproduced artifact as an aligned
text table (rows = methods, columns = budget groups, cells = the metric
series the corresponding figure plots).  EXPERIMENTS.md snapshots these
outputs next to the paper's reported shapes.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence

from .harness import BudgetGroup, Method, SuiteResult
from .metrics import PRF

__all__ = [
    "format_table",
    "render_prf_figure",
    "render_conciseness",
    "render_series",
]

_GROUP_LABELS = {
    BudgetGroup.SHORTCUT: "Shortcut budget",
    BudgetGroup.STACKED: "Stacked budget",
    BudgetGroup.DDT: "DDT budget",
}

_METHOD_LABELS = {
    Method.BUGDOC: "BugDoc",
    Method.DATA_XRAY_BUGDOC: "DataX-Ray+BugDoc",
    Method.DATA_XRAY_SMAC: "DataX-Ray+SMAC",
    Method.EXPL_TABLES_BUGDOC: "ExplTables+BugDoc",
    Method.EXPL_TABLES_SMAC: "ExplTables+SMAC",
}


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _metric_of(prf: PRF, metric: str) -> float:
    if metric == "precision":
        return prf.precision
    if metric == "recall":
        return prf.recall
    if metric == "f_measure":
        return prf.f_measure
    raise ValueError(f"unknown metric {metric!r}")


def render_prf_figure(
    result: SuiteResult,
    metric: str,
    title: str,
    groups: Sequence[BudgetGroup] = tuple(BudgetGroup),
    methods: Sequence[Method] = tuple(Method),
) -> str:
    """One sub-figure of Figures 2/3: a method x budget-group grid."""
    headers = ["method"] + [
        f"{_GROUP_LABELS[g]} (~{result.mean_budget(g):.0f} inst)" for g in groups
    ]
    rows = []
    for method in methods:
        row: list[object] = [_METHOD_LABELS[method]]
        for group in groups:
            row.append(f"{_metric_of(result.prf(method, group), metric):.3f}")
        rows.append(row)
    return format_table(headers, rows, title=title)


def render_conciseness(
    result: SuiteResult,
    title: str,
    groups: Sequence[BudgetGroup] = (BudgetGroup.DDT,),
    methods: Sequence[Method] = tuple(Method),
) -> str:
    """Figure 4: parameters per cause and log(asserted/actual)."""
    headers = ["method", "params/cause (4a)", "log10 asserted/actual (4b)"]
    rows = []
    for method in methods:
        parameters = []
        ratios = []
        for group in groups:
            stats = result.conciseness(method, group)
            if stats.n_causes:
                parameters.append(stats.parameters_per_cause)
            ratios.append(stats.log_asserted_per_actual)
        mean_parameters = sum(parameters) / len(parameters) if parameters else 0.0
        mean_ratio = sum(ratios) / len(ratios) if ratios else 0.0
        rows.append(
            [_METHOD_LABELS[method], f"{mean_parameters:.2f}", f"{mean_ratio:.2f}"]
        )
    return format_table(headers, rows, title=title)


def render_series(
    title: str,
    x_label: str,
    xs: Sequence[object],
    series: Mapping[str, Sequence[float]],
    fmt: Callable[[float], str] = lambda v: f"{v:.1f}",
) -> str:
    """A figure with one numeric y-series per label (Figures 5-6)."""
    headers = [x_label] + list(series.keys())
    rows = []
    for index, x in enumerate(xs):
        rows.append([x] + [fmt(values[index]) for values in series.values()])
    return format_table(headers, rows, title=title)
