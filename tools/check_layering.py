#!/usr/bin/env python
"""Import-layering check for the repro package.

The intended layering (bottom to top)::

    concurrency  ->  (stdlib only)
    core         ->  concurrency
    provenance   ->  core, concurrency
    pipeline     ->  core, provenance, concurrency
    exec         ->  pipeline, core, provenance, concurrency
    obs          ->  exec, pipeline, core, provenance, concurrency
    service      ->  obs, exec, pipeline, core, provenance, concurrency
    cli / eval / ...  (top: anything)

In particular, ``pipeline/`` and ``core/`` must never import from
``service/`` (the PR-1 adapter design briefly did, which is why the
shared scheduler and the single-flight cache moved to the neutral
``concurrency/`` package), and nothing below ``exec/`` may import it:
the core algorithms reach the process/event subsystem only through the
neutral ``DebugSession.progress`` callable, never by import.  This
script walks the AST of every module in the checked packages and fails
on forbidden absolute (``repro.service...``) or relative
(``..service``) imports.

Usage:
    python tools/check_layering.py [--src src]
"""

from __future__ import annotations

import argparse
import ast
import pathlib
import sys

# package (or nested "package/subpackage" path) -> layers it must NOT
# import from.  Nested entries add constraints on top of their parent
# package's (both are checked; exec/remote must obey exec's bans AND
# stay below cli).
FORBIDDEN = {
    "exec/remote": {
        "service",
        "obs",
        "cli",
        "baselines",
        "eval",
        "extensions",
        "synth",
        "workloads",
    },
    "concurrency": {
        "core",
        "exec",
        "obs",
        "pipeline",
        "provenance",
        "service",
        "baselines",
        "eval",
        "extensions",
        "synth",
        "workloads",
    },
    "core": {"service", "obs", "exec", "pipeline", "eval", "baselines"},
    "provenance": {"service", "obs", "exec", "pipeline", "eval"},
    "pipeline": {"service", "obs", "exec", "eval"},
    "exec": {
        "service",
        "obs",
        "baselines",
        "eval",
        "extensions",
        "synth",
        "workloads",
    },
    "obs": {
        "service",
        "baselines",
        "eval",
        "extensions",
        "synth",
        "workloads",
    },
}


def _resolved_package(node: ast.ImportFrom, module_parts: list[str]) -> str | None:
    """The top-level repro subpackage an ImportFrom reaches, or None."""
    if node.level == 0:
        target = (node.module or "").split(".")
        if target[:1] != ["repro"] or len(target) < 2:
            return None
        return target[1]
    # Relative import: resolve against the module's package path.
    base = module_parts[: len(module_parts) - node.level]
    target = base + ((node.module or "").split(".") if node.module else [])
    if target[:1] != ["repro"] or len(target) < 2:
        return None
    return target[1]


def check(src: pathlib.Path) -> list[str]:
    violations: list[str] = []
    root = src / "repro"
    for package, banned in FORBIDDEN.items():
        package_dir = root.joinpath(*package.split("/"))
        if not package_dir.is_dir():
            continue
        for path in sorted(package_dir.rglob("*.py")):
            relative = path.relative_to(src)
            module_parts = list(relative.with_suffix("").parts)
            if module_parts[-1] == "__init__":
                module_parts = module_parts[:-1] + [""]
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        parts = alias.name.split(".")
                        if parts[:1] == ["repro"] and len(parts) >= 2:
                            if parts[1] in banned:
                                violations.append(
                                    f"{relative}:{node.lineno}: "
                                    f"{package}/ imports repro.{parts[1]}"
                                )
                elif isinstance(node, ast.ImportFrom):
                    reached = _resolved_package(node, module_parts)
                    if reached in banned:
                        violations.append(
                            f"{relative}:{node.lineno}: "
                            f"{package}/ imports repro.{reached}"
                        )
    return violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--src", default="src", type=pathlib.Path)
    args = parser.parse_args(argv)
    violations = check(args.src)
    if violations:
        print("layering violations:", file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    print("layering OK: no upward imports")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
