"""CI smoke for retention-scale telemetry: trace end to end, compact
online, query byte-identically.

Drives the full PR-10 loop against a real ``repro serve --http``
subprocess running the remote-fleet backend:

1. start ``repro serve --http 0 --store <db> --backend remote --fleet 1``;
2. submit three jobs over HTTP (two ``ml``-family, one control) and
   wait for all to finish;
3. assert each submission's minted ``trace_id`` reconstructs as ONE
   causal tree via ``/query?op=trace``: root span (service events),
   dispatch child spans, and worker grandchild spans carrying the
   executing process's pid -- a *different* pid than the server's,
   proving the trace crossed the process boundary over the fleet wire
   protocol;
4. capture ``jobs`` + ``agg`` query bytes, then run ``repro compact
   --all`` for the ``ml`` workflow *while the service is still
   serving* (online compaction against a live writer);
5. re-query: ``jobs`` and ``agg`` must be byte-identical, the control
   workflow's raw events must be untouched, and the compacted job's
   detail must still serve its terminal record;
6. check ``GET /dashboard`` covers both families.

Exit code 0 on success; any failed step raises and exits non-zero.
Used as a *blocking* CI step (see .github/workflows/ci.yml).

Usage:
    PYTHONPATH=src python tools/retention_smoke.py
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time
import urllib.request

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

WORKLOAD = '''\
from repro.core import Instance, Outcome


def make_executor():
    def executor(instance: Instance) -> Outcome:
        return Outcome.FAIL if instance["a"] == 0 else Outcome.SUCCEED

    return executor
'''


def launch(db: pathlib.Path, env: dict):
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--http", "0", "--store", str(db),
            "--backend", "remote", "--fleet", "1", "--workers", "2",
        ],
        stdout=subprocess.PIPE,
        cwd=REPO_ROOT,
        env=env,
        text=True,
    )
    banner_line = process.stdout.readline()
    if not banner_line:
        raise SystemExit("server died before printing its banner")
    banner = json.loads(banner_line)["serving"]
    print(f"serving on port {banner['port']} (backend: remote fleet)")
    return process, banner


def get(port: int, path: str) -> bytes:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=120
    ) as response:
        return response.read()


def post(port: int, path: str, payload: dict) -> dict:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        assert response.status == 201, response.status
        return json.loads(response.read())


def payload(job_id: str, workflow: str) -> dict:
    domain = [json.dumps({"t": "int", "v": value}) for value in range(4)]
    return {
        "job_id": job_id,
        "workflow": workflow,
        "algorithm": "decision_trees",
        "goal": "find_all",
        "budget": 16,
        "executor_spec": {
            "builder": "retention_workload:make_executor",
            "kwargs": [],
        },
        "space": [["a", "ordinal", domain], ["b", "ordinal", domain]],
    }


def wait_terminal(port: int, job_id: str, deadline_seconds: float) -> str:
    deadline = time.monotonic() + deadline_seconds
    while time.monotonic() < deadline:
        status = json.loads(get(port, f"/jobs/{job_id}"))["status"]
        if status in ("succeeded", "failed", "cancelled"):
            return status
        time.sleep(0.2)
    raise SystemExit(f"{job_id} never reached a terminal state")


def check_trace_tree(port: int, job_id: str, trace_id: str, server_pid: int):
    tree = json.loads(get(port, f"/query?op=trace&trace_id={trace_id}"))
    assert tree["trace_id"] == trace_id, tree
    roots = tree["tree"]
    assert len(roots) == 1, f"{job_id}: expected one root span, got {roots}"
    root = roots[0]
    kinds = {event["kind"] for event in root["events"]}
    assert "submitted" in kinds and "finished" in kinds, kinds
    assert all(e["job_id"] == job_id for e in root["events"]), root
    dispatches = root["children"]
    assert dispatches, f"{job_id}: no dispatch spans under the root"
    worker_pids = set()
    for dispatch in dispatches:
        assert {e["kind"] for e in dispatch["events"]} == {"run_dispatched"}
        for worker in dispatch["children"]:
            assert {e["kind"] for e in worker["events"]} == {"run_completed"}
            worker_pids.add(worker["pid"])
    assert worker_pids, f"{job_id}: no worker spans under any dispatch"
    assert server_pid not in worker_pids, (
        f"{job_id}: worker spans claim the server pid -- the trace never "
        "crossed the process boundary"
    )
    print(
        f"trace {trace_id[:8]}…: 1 root, {len(dispatches)} dispatch span(s), "
        f"worker pid(s) {sorted(worker_pids)} != server pid {server_pid}"
    )


def main() -> int:
    scratch = pathlib.Path(tempfile.mkdtemp(prefix="retention-smoke-"))
    (scratch / "retention_workload.py").write_text(WORKLOAD)
    db = scratch / "smoke.db"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(scratch)]
    )

    process, banner = launch(db, env)
    port = banner["port"]
    try:
        traces = {}
        for job_id, workflow in (
            ("ml-1", "ml"), ("ml-2", "ml"), ("ctl-1", "control")
        ):
            accepted = post(port, "/jobs", payload(job_id, workflow))
            traces[job_id] = accepted["trace_id"]
            assert isinstance(traces[job_id], str), accepted
        for job_id in traces:
            status = wait_terminal(port, job_id, 180)
            assert status == "succeeded", (job_id, status)
        print(f"three jobs finished; trace ids: {traces}")

        for job_id, trace_id in traces.items():
            check_trace_tree(port, job_id, trace_id, process.pid)

        jobs_before = get(port, "/query?op=jobs")
        agg_before = get(
            port,
            "/query?op=agg&metric=count:run_completed&stat=sum"
            "&group_by=workflow",
        )
        control_events_before = get(
            port, "/query?op=events&workflow=control&kind=run_completed"
        )
        ml1_detail_before = get(port, "/jobs/ml-1")

        # Online compaction: the service keeps serving while a separate
        # process sweeps the ml family's raw events into summaries.
        swept = subprocess.run(
            [
                sys.executable, "-m", "repro", "compact",
                "--store", str(db), "--workflow", "ml", "--all",
            ],
            env=env, cwd=REPO_ROOT, capture_output=True, text=True,
        )
        assert swept.returncode == 0, swept.stderr
        report = json.loads(swept.stdout)
        assert report["compacted"] == 2, report
        print(f"online compaction: {report}")

        assert get(port, "/query?op=jobs") == jobs_before, (
            "jobs query changed across compaction"
        )
        after = get(
            port,
            "/query?op=agg&metric=count:run_completed&stat=sum"
            "&group_by=workflow",
        )
        assert after == agg_before, (
            "agg query changed across compaction:\n"
            f"  before: {agg_before!r}\n  after:  {after!r}"
        )
        assert get(
            port, "/query?op=events&workflow=control&kind=run_completed"
        ) == control_events_before, "control workflow raw events changed"
        ml_events = json.loads(
            get(port, "/query?op=events&workflow=ml&kind=run_completed")
        )
        assert ml_events["count"] == 0, "ml raw events survived compaction"
        detail = json.loads(get(port, "/jobs/ml-1"))
        before = json.loads(ml1_detail_before)
        assert detail["status"] == before["status"] == "succeeded"
        assert detail["causes"] == before["causes"], (
            "compacted job detail lost its terminal record"
        )
        assert detail.get("compacted") is True, detail
        print("jobs/agg byte-identical across online compaction; "
              "compacted detail served from the summary")

        dashboard = json.loads(get(port, "/dashboard"))
        assert set(dashboard["families"]) == {"ml", "control"}, dashboard
        ml_series = dashboard["families"]["ml"]
        assert sum(bucket["jobs"] for bucket in ml_series) == 2, ml_series
        print(f"dashboard families: {sorted(dashboard['families'])}")
    finally:
        process.terminate()
        try:
            process.wait(timeout=60)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=60)
    print("retention smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
