"""CI smoke for `repro serve --http`: submit, stream, query, kill -9,
restart, resume.

Drives the full durable-service loop end to end against a real
subprocess:

1. start ``repro serve --http 0 --store <db> --workers 1``;
2. submit two jobs (one fast, one slow enough to still be in flight);
3. NDJSON-stream the fast job to its terminal event;
4. answer a grouped aggregate over the persisted log via ``/query``;
5. ``kill -9`` the server mid-run;
6. restart it on the same store and assert the interrupted job is
   re-queued, resumed exactly once, and runs to completion while the
   finished job's detail replays byte-identical.

Exit code 0 on success; any failed step raises and exits non-zero.
Used as a *blocking* CI step (see .github/workflows/ci.yml).

Usage:
    PYTHONPATH=src python tools/http_smoke.py
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# The slow job's executor must outlive the kill reliably, so the smoke
# ships its own importable workload instead of racing a bundled one.
SLEEPY_WORKLOAD = '''\
import time

from repro.core import Instance, Outcome


def make_executor(delay=0.0):
    def executor(instance: Instance) -> Outcome:
        if delay:
            time.sleep(delay)
        return Outcome.FAIL if instance["a"] == 0 else Outcome.SUCCEED

    return executor
'''


def launch(db: pathlib.Path, env: dict):
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--http",
            "0",
            "--store",
            str(db),
            "--workers",
            "1",
        ],
        stdout=subprocess.PIPE,
        cwd=REPO_ROOT,
        env=env,
        text=True,
    )
    banner_line = process.stdout.readline()
    if not banner_line:
        raise SystemExit("server died before printing its banner")
    banner = json.loads(banner_line)["serving"]
    print(f"serving on port {banner['port']} (resume: {banner['resume']})")
    return process, banner


def get(port: int, path: str) -> bytes:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=120
    ) as response:
        return response.read()


def post(port: int, path: str, payload: dict) -> dict:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        assert response.status == 201, response.status
        return json.loads(response.read())


def payload(job_id: str, delay: float, budget: int) -> dict:
    # Domains use the store's typed scalar codec (see
    # repro.provenance.record.encode_value).
    domain = [json.dumps({"t": "int", "v": value}) for value in range(6)]
    return {
        "job_id": job_id,
        "workflow": job_id,
        "algorithm": "decision_trees",
        "goal": "find_all",
        "budget": budget,
        "executor_spec": {
            "builder": "smoke_workload:make_executor",
            "kwargs": [["delay", delay]],
        },
        "space": [["a", "ordinal", domain], ["b", "ordinal", domain]],
    }


def wait_terminal(port: int, job_id: str, deadline_seconds: float) -> str:
    deadline = time.monotonic() + deadline_seconds
    while time.monotonic() < deadline:
        status = json.loads(get(port, f"/jobs/{job_id}"))["status"]
        if status in ("succeeded", "failed", "cancelled"):
            return status
        time.sleep(0.2)
    raise SystemExit(f"{job_id} never reached a terminal state")


def main() -> int:
    scratch = pathlib.Path(tempfile.mkdtemp(prefix="http-smoke-"))
    (scratch / "smoke_workload.py").write_text(SLEEPY_WORKLOAD)
    db = scratch / "smoke.db"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(scratch)]
    )

    process, banner = launch(db, env)
    port = banner["port"]
    assert banner["durable"], "server must run the durable queue"
    try:
        # Fast job: submit and stream to completion.
        post(port, "/jobs", payload("fast", 0.0, budget=20))
        lines = get(port, "/jobs/fast/events?timeout=120").splitlines()
        last = json.loads(lines[-1])
        assert last["kind"] == "finished" and last["terminal"], last
        print(f"streamed fast: {len(lines)} events")
        fast_before = get(port, "/jobs/fast")
        assert json.loads(fast_before)["status"] == "succeeded"

        # Grouped aggregate over the persisted log.
        agg = json.loads(
            get(
                port,
                "/query?op=agg&metric=budget_spent&stat=count"
                "&group_by=workflow",
            )
        )
        assert agg["groups"].get("fast", {}).get("jobs") == 1, agg
        print(f"query agg: {agg['groups']}")

        # Slow job: reliably in flight when the server dies.
        post(port, "/jobs", payload("slow", 0.2, budget=30))
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if json.loads(get(port, "/jobs/slow"))["status"] == "running":
                break
            time.sleep(0.1)
        else:
            raise SystemExit("slow job never started running")

        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=60)
        print("killed the server mid-run")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=60)

    process, banner = launch(db, env)
    port = banner["port"]
    try:
        resume = banner["resume"]
        assert resume["requeued"] == 1, resume
        assert resume["resumed"] == ["slow"], resume
        status = wait_terminal(port, "slow", 120)
        assert status == "succeeded", status
        print("interrupted job resumed and finished")

        fast_after = get(port, "/jobs/fast")
        assert fast_after == fast_before, (
            "finished job's detail changed across the restart:\n"
            f"  before: {fast_before!r}\n  after:  {fast_after!r}"
        )
        print("finished job replayed byte-identical")
    finally:
        process.terminate()
        try:
            process.wait(timeout=60)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=60)
    print("http smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
