#!/usr/bin/env python
"""Quickstart: debug a black-box pipeline in ~20 lines.

Any callable ``Instance -> Outcome`` is a pipeline to BugDoc.  Here a
tiny configuration bug is planted (``cache = "off"`` together with
``batch_size > 64`` makes the job fail) and BugDoc recovers it as a
minimal definitive root cause with a handful of executions.

Run:  python examples/quickstart.py
"""

from repro.core import (
    Algorithm,
    BugDoc,
    Instance,
    Outcome,
    Parameter,
    ParameterKind,
    ParameterSpace,
)

# 1. Describe the manipulable parameters of your pipeline.
space = ParameterSpace(
    [
        Parameter("batch_size", (16, 32, 64, 128, 256), ParameterKind.ORDINAL),
        Parameter("cache", ("on", "off")),
        Parameter("compression", ("none", "lz4", "zstd")),
        Parameter("workers", (1, 2, 4, 8), ParameterKind.ORDINAL),
    ]
)


# 2. Wrap the pipeline as a black box: run one configuration, say
#    whether the result was acceptable.  (Normally this launches your
#    real job; the bug below is what BugDoc will have to discover.)
def run_pipeline(instance: Instance) -> Outcome:
    crashes = instance["cache"] == "off" and instance["batch_size"] > 64
    return Outcome.FAIL if crashes else Outcome.SUCCEED


def main() -> None:
    # 3. Point BugDoc at it.  `budget` caps how many new configurations
    #    it may execute while debugging.
    bugdoc = BugDoc(run_pipeline, space, budget=100, seed=0)

    # 4. Ask for every minimal definitive root cause.
    report = bugdoc.find_all(Algorithm.DECISION_TREES)

    print("Root causes found:")
    for cause in report.causes:
        print(f"  - {cause}")
    print(f"\nExplanation: {report.explanation}")
    print(f"Pipeline executions spent: {report.instances_executed}")

    # 5. The cheap alternative when executions are expensive: Shortcut
    #    finds one cause in at most |parameters| runs.  With so little
    #    prior provenance it may return a *truncated* assertion (a
    #    subset of the real cause -- Theorem 2 guarantees it is never a
    #    superset); Stacked Shortcut and DDT refine it.
    quick = BugDoc(run_pipeline, space, seed=0).find_one(Algorithm.SHORTCUT)
    print(f"\nShortcut's answer ({quick.instances_executed} executions): "
          f"{quick.explanation}")


if __name__ == "__main__":
    main()
