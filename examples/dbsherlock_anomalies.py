#!/usr/bin/env python
"""Historical-mode debugging: DBSherlock OLTP performance anomalies.

Here no new pipeline instance can ever be executed -- only logged TPC-C
runs exist.  202 raw statistics are reduced by feature selection and
bucketing to 15 ordinal parameters x 8 buckets (as in Section 5.3), the
log is split 50/25/25 into given provenance / replay budget / holdout,
and BugDoc runs with a ReplayExecutor that early-stops any hypothesis
whose test instance was never logged.

The asserted minimal root causes then act as a failure classifier on
the holdout: predict "anomalous" iff the instance is a superset of a
cause (the paper reports 98% accuracy).

Run:  python examples/dbsherlock_anomalies.py
"""

from repro.core import Algorithm, BugDoc, DDTConfig
from repro.workloads import dbsherlock


def main() -> None:
    for anomaly in ("cpu_saturation", "io_saturation", "lock_contention"):
        case = dbsherlock.build_case(anomaly, seed=4)
        session = case.make_session(budget=len(case.budget_pool.instances))
        bugdoc = BugDoc(session=session, seed=4)
        report = bugdoc.find_all(
            Algorithm.DECISION_TREES,
            ddt_config=DDTConfig(find_all=True, tests_per_suspect=40),
        )
        accuracy = dbsherlock.superset_classifier_accuracy(
            report.causes, case.holdout
        )
        print(f"\n=== anomaly class: {anomaly} ===")
        print(f"given runs: {len(case.training.instances)}, "
              f"replay budget: {len(case.budget_pool.instances)}, "
              f"holdout: {len(case.holdout)}")
        print("asserted minimal root causes:")
        for cause in report.causes:
            print(f"  - {cause}")
        print(f"instances read from unread provenance: {report.instances_executed}")
        print(f"holdout accuracy as a failure classifier: {accuracy:.1%}")


if __name__ == "__main__":
    main()
