#!/usr/bin/env python
"""Example 1 from the paper, end to end, on real training runs.

Builds the Figure 1 machine-learning workflow (read dataset -> train
estimator under a versioned library -> cross-validated F-measure),
seeds it with the Table 1 provenance, and lets each BugDoc algorithm
discover that library version 2.0 is the minimal definitive root cause
-- reproducing the Table 2 walk-through.

Run:  python examples/ml_pipeline_debugging.py   (~1 minute: it trains
real models for every instance the algorithms propose)
"""

from repro.core import Algorithm, BugDoc
from repro.eval import format_table
from repro.provenance import InMemoryProvenanceStore, RecordingExecutor
from repro.workloads import ml_pipeline


def main() -> None:
    executor = ml_pipeline.make_executor()
    space = ml_pipeline.make_space()

    # Capture everything we run into a provenance store, as a workflow
    # system would.
    store = InMemoryProvenanceStore()
    recording = RecordingExecutor(executor, store, workflow="ml-classification")

    history = ml_pipeline.table1_history(executor)
    print("Given provenance (Table 1):")
    rows = [
        [
            instance["dataset"],
            instance["estimator"],
            instance["library_version"],
            history.outcome_of(instance).value,
        ]
        for instance in history.instances
    ]
    print(format_table(["dataset", "estimator", "version", "evaluation"], rows))

    for algorithm in (
        Algorithm.SHORTCUT,
        Algorithm.STACKED_SHORTCUT,
        Algorithm.DECISION_TREES,
    ):
        bugdoc = BugDoc(recording, space, history=history.copy(), seed=0)
        report = bugdoc.find_one(algorithm)
        causes = " | ".join(str(c) for c in report.causes) or "(none)"
        print(
            f"\n{algorithm.value}: {causes}"
            f"   [{report.instances_executed} new executions]"
        )

    print(f"\nProvenance store captured {len(store)} executions; failures per")
    print("parameter-value (a human debugger's first suspects):")
    history_all = store.to_history()
    for instance in history_all.failures:
        print(f"  FAIL {dict(instance)}")


if __name__ == "__main__":
    main()
