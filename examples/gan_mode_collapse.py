#!/usr/bin/env python
"""Hunting GAN mode collapse with inequality root causes.

The GAN-training pipeline (6 parameters x 5 values, Section 5.3)
evaluates to fail when the final FID crosses the mode-collapse
threshold.  The interesting part: both planted causes involve
*inequalities* over ordinal hyperparameters (learning-rate imbalance,
high momentum without spectral norm), which only the Debugging Decision
Trees language can express -- shortcuts and the baselines are limited to
equality conjunctions.

Run:  python examples/gan_mode_collapse.py
"""

from repro.core import Algorithm, BugDoc, DDTConfig
from repro.pipeline import ParallelDebugSession
from repro.workloads import gan_training


def main() -> None:
    space = gan_training.make_space()
    executor = gan_training.make_executor()

    print("Planted collapse regions (ground truth):")
    for cause in gan_training.true_causes():
        print(f"  - {cause}")

    # Real GAN configurations train for ~10 hours each, so the paper's
    # prototype runs five execution-engine workers in parallel; we mirror
    # that architecture (the simulator is instant, the plumbing is real).
    session = ParallelDebugSession(executor, space, workers=5)
    bugdoc = BugDoc(session=session, seed=2)
    report = bugdoc.find_all(
        Algorithm.DECISION_TREES,
        ddt_config=DDTConfig(find_all=True, tests_per_suspect=25, max_rounds=120),
    )

    print(f"\nBugDoc found ({report.instances_executed} simulated trainings):")
    for cause in report.causes:
        print(f"  - {cause}")

    print("\nPer-worker execution counts (the paper's dispatcher design):")
    for slot, count in sorted(session.instances_per_worker.items()):
        print(f"  worker[{slot}]: {count} instances")


if __name__ == "__main__":
    main()
