#!/usr/bin/env python
"""Future-work extensions in action: group testing + observed variables.

Stage 1 -- BugDoc finds that a *dataset* parameter is the root cause of
the failures (``dataset = 'feed_B'``).

Stage 2 -- the paper's future-work drill-down: the rows of feed_B
become the search space and adaptive group testing isolates the
corrupted rows in ~log-many pipeline runs instead of one run per row.

Stage 3 -- observed (non-manipulable) variables recorded during the
runs (peak memory, a parser warning flag) annotate the explanation with
what the pipeline looked like whenever the cause fired.

Run:  python examples/dataset_drilldown.py
"""

import random

from repro.core import (
    Algorithm,
    BugDoc,
    Instance,
    Outcome,
    Parameter,
    ParameterKind,
    ParameterSpace,
)
from repro.extensions import ObservationLog, enrich, find_defectives

N_ROWS = 500
CORRUPTED_ROWS = {17, 211, 384}  # planted: malformed rows in feed_B

space = ParameterSpace(
    [
        Parameter("dataset", ("feed_A", "feed_B", "feed_C")),
        Parameter("window_days", (7, 14, 30, 90), ParameterKind.ORDINAL),
        Parameter("model", ("arima", "prophetish", "ets")),
    ]
)

observations = ObservationLog()
rng = random.Random(0)


def run_forecast(instance: Instance) -> Outcome:
    """The analytics pipeline: fails whenever feed_B's bad rows are read."""
    failing = instance["dataset"] == "feed_B"
    observations.record(
        instance,
        {
            "peak_memory_mb": 950.0 + rng.random() * 50 if failing else 210.0 + rng.random() * 30,
            "parser_warning": "schema_drift" if failing else "none",
        },
    )
    return Outcome.FAIL if failing else Outcome.SUCCEED


def run_on_rows(rows) -> bool:
    """Stage-2 black box: does the pipeline fail on this row subset?"""
    return any(row in CORRUPTED_ROWS for row in rows)


def main() -> None:
    # Stage 1: which parameter setting breaks the pipeline?
    bugdoc = BugDoc(run_forecast, space, seed=0)
    report = bugdoc.find_all(Algorithm.DECISION_TREES)
    print("Stage 1 -- root causes:")
    for cause in report.causes:
        print(f"  - {cause}")

    # Stage 3 (on stage-1 provenance): what did failing runs look like?
    print("\nStage 3 -- explanations enriched with observed variables:")
    for explanation in enrich(report.causes, observations, min_strength=0.5):
        print(f"  {explanation}")

    # Stage 2: the dataset is the cause -> drill into its rows.
    dataset_causes = [
        c for c in report.causes if "dataset" in c.parameters
    ]
    if dataset_causes:
        print(f"\nStage 2 -- group testing inside feed_B ({N_ROWS} rows):")
        result = find_defectives(run_on_rows, list(range(N_ROWS)))
        print(f"  corrupted rows found: {sorted(result.defectives)}")
        print(f"  subset executions:    {result.tests_used} "
              f"(vs {result.exhaustive_equivalent} one-row-at-a-time, "
              f"{result.savings_factor:.1f}x cheaper)")
        assert set(result.defectives) == CORRUPTED_ROWS


if __name__ == "__main__":
    main()
