#!/usr/bin/env python
"""Debugging pipeline *crashes*: the Data Polygamy case study.

The simulated Data Polygamy experiment (12 parameters: 2 boolean, 3
categorical, 7 numerical -- the shape reported in Section 5.3) crashes
under two planted conditions.  BugDoc treats "crashed" as the failure
under investigation and isolates both minimal definitive root causes,
comparing its answer with the Data X-Ray and Explanation Tables
baselines run on the very same execution history.

Run:  python examples/data_polygamy_crash.py
"""

from repro.baselines import data_xray, explanation_tables
from repro.core import Algorithm, BugDoc, DDTConfig, DebugSession
from repro.workloads import data_polygamy


def main() -> None:
    space = data_polygamy.make_space()
    executor = data_polygamy.make_executor()

    print("Planted crash causes (ground truth):")
    for cause in data_polygamy.true_causes():
        print(f"  - {cause}")

    session = DebugSession(executor, space)
    bugdoc = BugDoc(session=session, seed=3)
    report = bugdoc.find_all(
        Algorithm.COMBINED,
        ddt_config=DDTConfig(find_all=True, tests_per_suspect=30, seed=3),
    )

    print(f"\nBugDoc (Stacked Shortcut + DDT, {report.instances_executed} runs):")
    for cause in report.causes:
        print(f"  - {cause}")

    # The baselines only *analyze* the history BugDoc generated.
    history = session.history
    print("\nData X-Ray diagnoses over the same history:")
    for diagnosis in data_xray(history, space).diagnoses[:6]:
        print(f"  - {diagnosis}")

    print("\nExplanation Tables (patterns with observed failure rate 1.0):")
    for cause in explanation_tables(history, space).asserted_causes():
        print(f"  - {cause}")


if __name__ == "__main__":
    main()
