"""Figure 4: conciseness of explanations.

(4a) average number of parameters per asserted root cause, per method;
(4b) average log10(#asserted / #actual) root causes, per method.

Expected shape (paper): BugDoc's causes are the most concise (fewest
parameters) and it does not assert more causes than exist (log ratio
near 0); Data X-Ray asserts many more, Explanation Tables a few more.
"""

from __future__ import annotations

from repro.eval import render_conciseness, run_suite
from repro.eval.harness import BudgetGroup, Method
from repro.synth import Scenario, make_suite

from conftest import run_once


def _result():
    suite = make_suite(
        Scenario.DISJUNCTION,
        8,
        seed=401,
        min_parameters=3,
        max_parameters=6,
        min_values=5,
        max_values=9,
    )
    return run_suite(suite, find_all=True, seed=401)


def test_fig4_conciseness(benchmark, publish):
    result = run_once(benchmark, _result)
    text = render_conciseness(
        result,
        "Figure 4: explanation conciseness (DDT budget group, FindAll)",
        groups=(BudgetGroup.DDT,),
    )
    publish("fig4_conciseness", text)

    bugdoc = result.conciseness(Method.BUGDOC, BudgetGroup.DDT)
    xray = result.conciseness(Method.DATA_XRAY_BUGDOC, BudgetGroup.DDT)
    # X-Ray asserts (many) more causes per actual bug than BugDoc.
    assert bugdoc.log_asserted_per_actual <= xray.log_asserted_per_actual
