"""Figure 7: precision and recall on the real-world pipelines.

BugDoc (Stacked Shortcut and Debugging Decision Trees combined, as in
the paper) vs Data X-Ray vs Explanation Tables on:

* the ML classification pipeline (library-version bug, Tables 1-2),
* the Data Polygamy crash-debugging experiment,
* the GAN mode-collapse pipeline,
* the DBSherlock OLTP-anomaly logs in historical mode.

Scoring follows the paper's methodology: asserted causes are
"manually investigated" for soundness (automated via Definition 4/5
checks against each workload's ground-truth oracle); recall is the
fraction of known failures the asserted causes explain.

Expected shape: BugDoc recall = 1.0 on every pipeline with precision at
or near 1.0; Data X-Ray keeps recall high but loses precision (spurious
causes); Explanation Tables keeps precision high but loses recall.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.baselines import data_xray, explanation_tables
from repro.core import Algorithm, BugDoc, DDTConfig, DebugSession, Outcome
from repro.eval import failure_coverage, format_table, match_soundness
from repro.workloads import data_polygamy, dbsherlock, gan_training, ml_pipeline

from conftest import run_once


@dataclass
class Workload:
    name: str
    space: object
    session_factory: object
    oracle: object
    true_causes: list
    known_failures: list
    # Historical workloads: soundness can only be judged against the
    # logged universe (there is no oracle for never-logged instances).
    log: object = None


def _synthetic_session(executor, space, seed):
    session = DebugSession(executor, space)
    return session


def _workloads():
    items = []

    # -- ML pipeline (real training runs) --------------------------------
    executor = ml_pipeline.make_executor()
    space = ml_pipeline.make_space()
    history = ml_pipeline.table1_history(executor)

    def ml_factory():
        return DebugSession(executor, space, history=history.copy())

    # Oracle for soundness checks: version 2.0 fails (validated by the
    # test suite against real executions).
    def ml_oracle(instance):
        return (
            Outcome.FAIL
            if instance["library_version"] == "2.0"
            else Outcome.SUCCEED
        )

    failures = [i for i in space.instances() if ml_oracle(i) is Outcome.FAIL]
    items.append(
        Workload(
            "ml-classification",
            space,
            ml_factory,
            ml_oracle,
            [ml_pipeline.true_cause()],
            failures,
        )
    )

    # -- Data Polygamy -----------------------------------------------------
    dp_space = data_polygamy.make_space()

    def dp_factory():
        return DebugSession(data_polygamy.make_executor(), dp_space)

    rng = random.Random(7)
    dp_failures = []
    while len(dp_failures) < 150:
        candidate = dp_space.random_instance(rng)
        if data_polygamy.oracle(candidate) is Outcome.FAIL:
            dp_failures.append(candidate)
    items.append(
        Workload(
            "data-polygamy",
            dp_space,
            dp_factory,
            data_polygamy.oracle,
            data_polygamy.true_causes(),
            dp_failures,
        )
    )

    # -- GAN training --------------------------------------------------------
    gan_space = gan_training.make_space()

    def gan_factory():
        return DebugSession(gan_training.make_executor(), gan_space)

    gan_failures = [
        i for i in gan_space.instances() if gan_training.oracle(i) is Outcome.FAIL
    ]
    items.append(
        Workload(
            "gan-training",
            gan_space,
            gan_factory,
            gan_training.oracle,
            gan_training.true_causes(),
            gan_failures,
        )
    )

    # -- DBSherlock (historical mode) ---------------------------------------
    case = dbsherlock.build_case("cpu_saturation", seed=11)
    replay = case.replay_log()
    for instance, outcome in case.holdout:
        if replay.outcome_of(instance) is None:
            replay.record(instance, outcome)

    def dbs_factory():
        return case.make_session()

    items.append(
        Workload(
            "dbsherlock",
            case.space,
            dbs_factory,
            None,  # no oracle beyond the log in historical mode
            case.true_causes,
            list(replay.failures),
            log=replay,
        )
    )
    return items


def _log_soundness(causes, log, space):
    """Soundness against a finite log: supported, unrefuted, and minimal
    in the sense that every one-predicate generalization IS refuted."""
    correct, incorrect = [], []
    for cause in causes:
        if cause.is_trivial() or log.refutes(cause) or not log.supports(cause):
            incorrect.append(cause)
            continue
        minimal = all(
            log.refutes(
                type(cause)(p for p in cause.predicates if p != dropped)
            )
            or len(cause) == 1
            for dropped in cause.predicates
        )
        (correct if minimal else incorrect).append(cause)
    return correct, incorrect


def _evaluate(workload: Workload):
    # BugDoc: Stacked Shortcut + DDT combined (the paper's Figure 7 setup).
    session = workload.session_factory()
    bugdoc = BugDoc(session=session, seed=1)
    report = bugdoc.find_all(
        Algorithm.COMBINED,
        ddt_config=DDTConfig(find_all=True, tests_per_suspect=24, seed=1),
    )
    history = session.history

    methods = {
        "BugDoc (Stacked+DDT)": report.causes,
        "Data X-Ray": list(data_xray(history, workload.space).diagnoses),
        "Explanation Tables": explanation_tables(
            history, workload.space
        ).asserted_causes(),
    }
    rows = []
    for method, causes in methods.items():
        if workload.log is not None:
            correct, __ = _log_soundness(causes, workload.log, workload.space)
        else:
            matched = match_soundness(
                causes, workload.true_causes, workload.space, workload.oracle
            )
            correct = list(matched.correct_asserted)
        n_correct = len(correct)
        n_total = len(causes)
        precision = n_correct / n_total if n_total else 0.0
        # Recall counts coverage by *everything asserted* -- an unsound
        # cause still points the debugger at those failures; precision
        # is where unsoundness is charged (the paper's X-Ray keeps high
        # recall while losing precision).
        recall = failure_coverage(list(causes), workload.known_failures)
        rows.append((workload.name, method, precision, recall, n_total))
    return rows


def _figure():
    all_rows = []
    for workload in _workloads():
        all_rows.extend(_evaluate(workload))
    return all_rows


def test_fig7_realworld(benchmark, publish):
    rows = run_once(benchmark, _figure)
    text = format_table(
        ["pipeline", "method", "precision", "recall", "#asserted"],
        [
            [name, method, f"{p:.3f}", f"{r:.3f}", n]
            for name, method, p, r, n in rows
        ],
        title=(
            "Figure 7: real-world pipelines -- soundness precision and "
            "failure-coverage recall"
        ),
    )
    publish("fig7_realworld", text)

    by_method: dict[str, list[tuple[float, float]]] = {}
    for __, method, precision, recall, __n in rows:
        by_method.setdefault(method, []).append((precision, recall))

    def mean(values):
        return sum(values) / len(values)

    bugdoc_precision = mean([p for p, __ in by_method["BugDoc (Stacked+DDT)"]])
    bugdoc_recall = mean([r for __, r in by_method["BugDoc (Stacked+DDT)"]])
    xray_precision = mean([p for p, __ in by_method["Data X-Ray"]])
    et_recall = mean([r for __, r in by_method["Explanation Tables"]])

    # Paper's Figure 7 shapes.
    assert bugdoc_recall >= 0.9, f"BugDoc recall {bugdoc_recall:.3f}"
    assert bugdoc_precision >= xray_precision
    assert bugdoc_recall >= et_recall
