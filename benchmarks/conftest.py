"""Shared benchmark utilities.

Every benchmark regenerates one of the paper's tables or figures and
(a) prints the rendered text artifact, (b) archives it under
``benchmarks/results/`` so EXPERIMENTS.md can reference stable outputs,
and (c) times the core computation with pytest-benchmark (single round:
these are experiment drivers, not micro-benchmarks).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def publish(results_dir):
    """Print an artifact and archive it as results/<name>.txt."""

    def _publish(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _publish


def run_once(benchmark, func, *args, **kwargs):
    """Time one execution (experiments are macro-scale, not re-runnable)."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
