"""Process-pool execution backend vs in-process execution (PR 5).

The thread-based dispatcher reproduces Figure 6's latency hiding, but a
*CPU-bound* pipeline holds the GIL, so in-process threads cannot
overlap its work at all -- the exact gap `repro.exec.ProcessPool`
closes.  This benchmark drives the same end-to-end DDT FindAll search
(speculative parallel batches, Section 4.3) over the deterministic
CPU-bound synthetic pipeline (`repro.exec.synthetic`) under three
execution disciplines:

* ``serial``  -- plain in-process `DebugSession`, one run at a time;
* ``threads`` -- in-process `ParallelDebugSession` (the PR 1 thread
  dispatcher);
* ``process`` -- `ProcessPool.session(...)`: batches fan out across
  spawn-safe worker processes.

Two workload modes isolate the two claims:

* **cpu** (GIL-holding hash loop): threads buy ~nothing, processes
  scale with cores.  The >=2x gate at 4 workers applies when the
  machine actually has >=4 usable cores (it is reported, not enforced,
  on smaller containers -- no parallelism of any kind can beat the
  clock on one core).
* **latency** (blocking sleep, the repo's established stand-in for
  expensive pipelines): both backends overlap it; the process gate
  here proves the pool's concurrency end-to-end on any machine.

Report identity is enforced, not sampled: the process run's fingerprint
(causes, explanation, execution counts, budget, final history content)
must be byte-identical to its in-process twin under the same dispatch
discipline, and the serial/parallel disciplines must agree on the
causes (they legitimately differ in execution counts -- speculation
trades waste for latency).

Usage:
    PYTHONPATH=src python benchmarks/bench_process_backend.py [--quick]
"""

from __future__ import annotations

import argparse
import os
import pathlib
import random
import sys
import time

from repro.core import DDTConfig, DebugSession, ExecutionHistory, Instance, Outcome
from repro.core.ddt import debugging_decision_trees
from repro.exec import ExecutorSpec, ProcessPool
from repro.exec.synthetic import build_pipeline, build_space
from repro.pipeline.runner import ParallelDebugSession

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SYNTH = "repro.exec.synthetic:build_pipeline"

N_PARAMS = 5
DOMAIN = 4
FAIL_WHEN = {"p0": 1, "p1": 2}
SPACE = build_space(n_params=N_PARAMS, domain=DOMAIN)

FULL_WORKERS = (1, 2, 4)
QUICK_WORKERS = (2,)
FULL_CPU_ITERATIONS = 20_000  # ~10-20ms of GIL-holding work per run
QUICK_CPU_ITERATIONS = 4_000
FULL_SLEEP = 0.05
QUICK_SLEEP = 0.05
REQUIRED_SPEEDUP_AT_4 = 2.0
QUICK_REQUIRED_SPEEDUP = 1.2


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _seed_history(mode: str, work) -> ExecutionHistory:
    """Deterministic informative seed: the planted failure + background."""
    executor = build_pipeline(fail_when=FAIL_WHEN)  # zero-work twin
    history = ExecutionHistory()
    rng = random.Random(11)
    history.record(
        Instance({"p0": 1, "p1": 2, "p2": 0, "p3": 3, "p4": 0}), Outcome.FAIL
    )
    for __ in range(10):
        instance = SPACE.random_instance(rng)
        if instance not in history:
            history.record(instance, executor(instance))
    return history


def _pipeline_kwargs(mode: str, work) -> dict:
    if mode == "cpu":
        return {"fail_when": FAIL_WHEN, "mode": "cpu", "work_iterations": work}
    return {"fail_when": FAIL_WHEN, "mode": "sleep", "sleep_seconds": work}


def _config(quick: bool) -> DDTConfig:
    # Exploration probes run sequentially (rejection sampling with a
    # data dependence), so they bound the parallelizable fraction;
    # keep them small relative to the batched suspect tests.
    return DDTConfig(
        find_all=True,
        tests_per_suspect=8 if quick else 16,
        exploration_per_round=3,
        max_rounds=20,
        seed=3,
    )


def _fingerprint(result, session):
    history = session.history
    return (
        tuple(str(c) for c in result.causes),
        str(result.explanation),
        result.instances_executed,
        result.rounds,
        session.budget.spent,
        session.new_executions,
        tuple(
            sorted(
                (repr(i), history.outcome_of(i).value)
                for i in history.instances
            )
        ),
    )


def _run(session, config):
    started = time.perf_counter()
    result = debugging_decision_trees(session, config)
    wall = time.perf_counter() - started
    return wall, _fingerprint(result, session)


def run_mode(mode: str, work, workers_list, config):
    """One workload mode: serial + threads + process at each pool size."""
    kwargs = _pipeline_kwargs(mode, work)
    spec = ExecutorSpec.from_builder(SYNTH, **kwargs)

    serial_wall, serial_fp = _run(
        DebugSession(
            build_pipeline(**kwargs), SPACE, history=_seed_history(mode, work)
        ),
        config,
    )
    rows = []
    for workers in workers_list:
        thread_wall, thread_fp = _run(
            ParallelDebugSession(
                build_pipeline(**kwargs),
                SPACE,
                history=_seed_history(mode, work),
                workers=workers,
            ),
            config,
        )
        with ProcessPool(max_workers=workers, prewarm=workers) as pool:
            process_wall, process_fp = _run(
                pool.session(spec, SPACE, history=_seed_history(mode, work)),
                config,
            )
            stats = pool.stats()
        if process_fp != thread_fp:
            raise SystemExit(
                f"PROCESS DIVERGENCE ({mode}, {workers} workers):\n"
                f"  threads : {thread_fp}\n"
                f"  process : {process_fp}"
            )
        if process_fp[:2] != serial_fp[:2]:
            raise SystemExit(
                f"CAUSE DIVERGENCE ({mode}, {workers} workers): "
                f"{process_fp[:2]} vs serial {serial_fp[:2]}"
            )
        if stats["crashes"] or stats["timeouts"]:
            raise SystemExit(
                f"UNEXPECTED FAULTS ({mode}, {workers} workers): {stats}"
            )
        rows.append(
            {
                "mode": mode,
                "workers": workers,
                "executions": process_fp[5],
                "serial_s": serial_wall,
                "threads_s": thread_wall,
                "process_s": process_wall,
                "vs_serial": serial_wall / process_wall,
                "vs_threads": thread_wall / process_wall,
            }
        )
    return rows, serial_fp


def render(all_rows, cores) -> str:
    lines = [
        "Process-pool execution backend: end-to-end DDT FindAll on the",
        "CPU-bound synthetic pipeline, speculative parallel batches, vs",
        "in-process serial and in-process thread dispatch (identical",
        "report fingerprints enforced per cell).",
        "",
        f"usable cores: {cores}",
        "",
        f"{'mode':>8} {'workers':>8} {'runs':>5} {'serial':>9} "
        f"{'threads':>9} {'process':>9} {'vs serial':>10} {'vs threads':>11}",
    ]
    for row in all_rows:
        lines.append(
            f"{row['mode']:>8} {row['workers']:>8} {row['executions']:>5} "
            f"{row['serial_s']:>8.2f}s {row['threads_s']:>8.2f}s "
            f"{row['process_s']:>8.2f}s {row['vs_serial']:>9.2f}x "
            f"{row['vs_threads']:>10.2f}x"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: 2 workers, small work, identity gates plus"
        " a modest latency-mode speedup bar; no results file",
    )
    args = parser.parse_args(argv)

    cores = _usable_cores()
    workers_list = QUICK_WORKERS if args.quick else FULL_WORKERS
    cpu_work = QUICK_CPU_ITERATIONS if args.quick else FULL_CPU_ITERATIONS
    sleep_work = QUICK_SLEEP if args.quick else FULL_SLEEP
    config = _config(args.quick)

    cpu_rows, __ = run_mode("cpu", cpu_work, workers_list, config)
    latency_rows, __ = run_mode("latency", sleep_work, workers_list, config)
    all_rows = cpu_rows + latency_rows

    text = render(all_rows, cores)
    print(text)

    failures: list[str] = []
    # Latency mode proves the pool's end-to-end concurrency anywhere:
    # blocked workers do not hold the GIL, so the speedup must appear
    # even on a single-core container.
    latency_bar = QUICK_REQUIRED_SPEEDUP if args.quick else REQUIRED_SPEEDUP_AT_4
    gated = [
        row
        for row in latency_rows
        if row["workers"] == max(workers_list)
    ]
    for row in gated:
        if row["vs_serial"] < latency_bar:
            failures.append(
                f"latency-mode process backend at {row['workers']} workers: "
                f"{row['vs_serial']:.2f}x vs serial, below {latency_bar:.1f}x"
            )
    # CPU mode is the GIL claim: enforce only where the hardware can
    # express it (>= max-workers usable cores); report otherwise.
    cpu_gated = [row for row in cpu_rows if row["workers"] == max(workers_list)]
    for row in cpu_gated:
        bar = QUICK_REQUIRED_SPEEDUP if args.quick else REQUIRED_SPEEDUP_AT_4
        if cores >= row["workers"]:
            if row["vs_threads"] < bar:
                failures.append(
                    f"cpu-mode process backend at {row['workers']} workers: "
                    f"{row['vs_threads']:.2f}x vs threads, below {bar:.1f}x "
                    f"({cores} cores available)"
                )
        else:
            print(
                f"\nnote: cpu-mode >= {bar:.0f}x gate skipped -- only "
                f"{cores} usable core(s), {row['workers']} workers cannot "
                "run CPU-bound work concurrently on this machine"
            )

    if not args.quick:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "process_backend.txt").write_text(
            text + "\n", encoding="utf-8"
        )

    if failures:
        for failure in failures:
            print(f"\nFAIL: {failure}", file=sys.stderr)
        return 1
    print("\nOK: identical reports; speedup gates satisfied")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
