"""Remote worker fleet under injected faults: identity, not speed (PR 7).

The distributed tier's claim is *robustness*: a DDT FindAll debug run
dispatched over a fleet of socket-connected workers must produce a
report byte-identical to the serial in-process session -- with exact
budgets and execution counts -- no matter what the network does to it.
This benchmark drives the same end-to-end search
(``repro.exec.synthetic``, deterministic) through a
:class:`~repro.exec.RemoteWorkerPool` under three scenarios:

* ``clean`` -- a healthy fleet; baseline sanity (no faults recorded,
  no local fallback, every run dispatched remotely);
* ``chaos`` -- drop/delay/duplicate/reorder on the wire, one worker
  killed mid-run, another partitioned until it is evicted and then
  healed (it must rejoin); the run is carried by re-dispatch under the
  retry policy and, when the fleet momentarily drains, by the local
  fallback path;
* ``drain`` -- every worker leaves gracefully mid-job (``max_runs``);
  the coordinator degrades to local execution and finishes.

Every scenario's report fingerprint (causes, explanation, execution
counts, budget, final history content) is gated byte-identical to the
serial in-process twin, and the chaos scenario additionally gates the
fault bookkeeping (a worker was lost, a worker was evicted, the
partitioned worker rejoined).

Usage:
    PYTHONPATH=src python benchmarks/bench_remote_fleet.py [--quick]
"""

from __future__ import annotations

import argparse
import pathlib
import random
import sys
import threading
import time

from repro.core import DDTConfig, DebugSession, ExecutionHistory, Instance, Outcome
from repro.core.ddt import debugging_decision_trees
from repro.exec import (
    ExecutorSpec,
    FaultPlan,
    FaultyConnection,
    FleetWorker,
    RemoteWorkerPool,
    RetryPolicy,
)
from repro.exec.synthetic import build_pipeline, build_space
from repro.provenance import InMemoryProvenanceStore

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SYNTH = "repro.exec.synthetic:build_pipeline"

FAIL_WHEN = {"p0": 1, "p1": 2}
SPACE = build_space(n_params=4, domain=4)
HB = 0.06  # fast liveness for in-thread fleets (evict at 0.3s)

FULL_WORKERS = 4
QUICK_WORKERS = 2
FULL_SLEEP = 0.01
QUICK_SLEEP = 0.004


def _seed_history() -> ExecutionHistory:
    executor = build_pipeline(fail_when=FAIL_WHEN)  # zero-work twin
    history = ExecutionHistory()
    rng = random.Random(11)
    history.record(
        Instance({"p0": 1, "p1": 2, "p2": 0, "p3": 3}), Outcome.FAIL
    )
    for __ in range(8):
        instance = SPACE.random_instance(rng)
        if instance not in history:
            history.record(instance, executor(instance))
    return history


def _config() -> DDTConfig:
    return DDTConfig(
        find_all=True,
        tests_per_suspect=6,
        exploration_per_round=4,
        max_rounds=20,
        seed=3,
    )


def _fingerprint(result, session):
    history = session.history
    return (
        tuple(str(c) for c in result.causes),
        str(result.explanation),
        result.instances_executed,
        result.rounds,
        session.budget.spent,
        session.new_executions,
        tuple(
            sorted(
                (repr(i), history.outcome_of(i).value)
                for i in history.instances
            )
        ),
    )


def _run(session, config):
    started = time.perf_counter()
    result = debugging_decision_trees(session, config)
    wall = time.perf_counter() - started
    return wall, _fingerprint(result, session)


def _spec(sleep: float) -> ExecutorSpec:
    return ExecutorSpec.from_builder(
        SYNTH, fail_when=FAIL_WHEN, mode="sleep", sleep_seconds=sleep
    )


def _wait_until(predicate, timeout: float, what: str) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise SystemExit(f"CHAOS GATE: timed out waiting for {what}")


def _fleet_run(pool: RemoteWorkerPool, sleep: float, config):
    session = pool.session(
        _spec(sleep), SPACE, history=_seed_history(), parallel=False
    )
    return _run(session, config)


def scenario_clean(workers_n: int, sleep: float, config, serial_fp):
    with RemoteWorkerPool(
        heartbeat_interval=HB, store=InMemoryProvenanceStore()
    ) as pool:
        workers = [
            FleetWorker(*pool.address, name=f"clean-w{i}").start()
            for i in range(workers_n)
        ]
        pool.wait_for_workers(workers_n, timeout=10.0)
        wall, fleet_fp = _fleet_run(pool, sleep, config)
        stats = pool.stats()
        for worker in workers:
            worker.stop()
    if fleet_fp != serial_fp:
        raise SystemExit(
            f"CLEAN DIVERGENCE:\n  serial: {serial_fp}\n  fleet : {fleet_fp}"
        )
    if stats["local_runs"] or stats["workers_lost"] or stats["redispatches"]:
        raise SystemExit(f"CLEAN SCENARIO NOT CLEAN: {stats}")
    return {"scenario": "clean", "wall": wall, "stats": stats}


def scenario_chaos(workers_n: int, sleep: float, config, serial_fp):
    """Faulty wire + mid-run kill + partition-and-rejoin."""
    taps: list[FaultyConnection] = []

    def tapped(plan: FaultPlan):
        def wrapper(conn):
            tap = FaultyConnection(conn, plan)
            taps.append(tap)
            return tap

        return wrapper

    chaos_plan = FaultPlan(
        drop=0.04,
        delay=0.10,
        duplicate=0.10,
        reorder=0.04,
        delay_seconds=0.02,
        seed=7,
    )
    mild_filter = FaultPlan(delay=0.10, duplicate=0.10, delay_seconds=0.01,
                            seed=11)
    with RemoteWorkerPool(
        heartbeat_interval=HB,
        run_timeout=0.8,
        retry_policy=RetryPolicy(
            crash_retries=8,
            timeout_retries=8,
            base_delay=0.01,
            factor=1.5,
            max_delay=0.1,
            jitter=0.25,
            seed=5,
        ),
        store=InMemoryProvenanceStore(),
        connection_filter=lambda c: FaultyConnection(c, mild_filter),
    ) as pool:
        # Worker 0 dies mid-run; worker 1 gets partitioned and healed;
        # any further workers just live with the lossy wire.
        workers = [
            FleetWorker(
                *pool.address,
                name=f"chaos-w{i}",
                connection_wrapper=None if i == 0 else tapped(chaos_plan),
                reconnect_attempts=5,
                reconnect_delay=0.05,
                store_timeout=0.3,
            ).start()
            for i in range(workers_n)
        ]
        pool.wait_for_workers(workers_n, timeout=10.0)
        partition_tap = taps[0]  # worker 1's first connection

        def sabotage():
            workers[0].kill()
            time.sleep(0.1)
            partition_tap.partition()
            time.sleep(0.5)
            partition_tap.heal()

        saboteur = threading.Timer(0.15, sabotage)
        saboteur.daemon = True
        saboteur.start()
        wall, fleet_fp = _fleet_run(pool, sleep, config)
        saboteur.join()
        # Heartbeats outlive the job: the healed/redialed member must
        # end up back in the fleet even if the search finished first.
        _wait_until(
            lambda: pool.stats()["workers_rejoined"] >= 1,
            timeout=10.0,
            what="partitioned worker to rejoin",
        )
        stats = pool.stats()
        for worker in workers:
            worker.stop()
    if fleet_fp != serial_fp:
        raise SystemExit(
            f"CHAOS DIVERGENCE:\n  serial: {serial_fp}\n  fleet : {fleet_fp}"
        )
    for gate, what in (
        (stats["workers_lost"] >= 1, "killed worker recorded as lost"),
        (stats["workers_evicted"] >= 1, "partitioned worker evicted"),
        (stats["workers_rejoined"] >= 1, "healed worker rejoined"),
        (stats["runs"] + stats["local_runs"] > 0, "any runs at all"),
    ):
        if not gate:
            raise SystemExit(f"CHAOS GATE: missing {what}: {stats}")
    return {"scenario": "chaos", "wall": wall, "stats": stats}


def scenario_drain(workers_n: int, sleep: float, config, serial_fp):
    with RemoteWorkerPool(
        heartbeat_interval=HB, store=InMemoryProvenanceStore()
    ) as pool:
        workers = [
            FleetWorker(*pool.address, name=f"drain-w{i}", max_runs=4).start()
            for i in range(workers_n)
        ]
        pool.wait_for_workers(workers_n, timeout=10.0)
        wall, fleet_fp = _fleet_run(pool, sleep, config)
        stats = pool.stats()
        for worker in workers:
            worker.stop()
    if fleet_fp != serial_fp:
        raise SystemExit(
            f"DRAIN DIVERGENCE:\n  serial: {serial_fp}\n  fleet : {fleet_fp}"
        )
    if stats["workers_left"] != workers_n:
        raise SystemExit(f"DRAIN GATE: not every worker left: {stats}")
    if not stats["local_runs"]:
        raise SystemExit(f"DRAIN GATE: local fallback never engaged: {stats}")
    return {"scenario": "drain", "wall": wall, "stats": stats}


def render(rows, serial_wall: float, workers_n: int) -> str:
    lines = [
        "Remote worker fleet: end-to-end DDT FindAll dispatched over",
        "socket-connected workers under injected faults; report",
        "fingerprints byte-identical to the serial in-process session",
        "(enforced per scenario, exact budgets included).",
        "",
        f"workers: {workers_n}   serial in-process: {serial_wall:.2f}s",
        "",
        f"{'scenario':>9} {'wall':>7} {'runs':>7} {'local':>6} "
        f"{'redisp':>7} {'lost':>5} {'evict':>6} {'rejoin':>7} {'left':>5}",
    ]
    for row in rows:
        stats = row["stats"]
        lines.append(
            f"{row['scenario']:>9} {row['wall']:>6.2f}s "
            f"{stats['runs']:>7} {stats['local_runs']:>6} "
            f"{stats['redispatches']:>7} {stats['workers_lost']:>5} "
            f"{stats['workers_evicted']:>6} {stats['workers_rejoined']:>7} "
            f"{stats['workers_left']:>5}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI chaos-smoke mode: 2 workers, shorter runs, same"
        " identity and fault-bookkeeping gates; no results file",
    )
    args = parser.parse_args(argv)

    workers_n = QUICK_WORKERS if args.quick else FULL_WORKERS
    sleep = QUICK_SLEEP if args.quick else FULL_SLEEP
    config = _config()

    serial_wall, serial_fp = _run(
        DebugSession(
            build_pipeline(
                fail_when=FAIL_WHEN, mode="sleep", sleep_seconds=sleep
            ),
            SPACE,
            history=_seed_history(),
        ),
        config,
    )

    rows = [
        scenario_clean(workers_n, sleep, config, serial_fp),
        scenario_chaos(workers_n, sleep, config, serial_fp),
        scenario_drain(workers_n, sleep, config, serial_fp),
    ]

    text = render(rows, serial_wall, workers_n)
    print(text)

    if not args.quick:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "remote_fleet.txt").write_text(
            text + "\n", encoding="utf-8"
        )

    print(
        "\nOK: byte-identical reports under clean, chaotic, and draining"
        " fleets; fault bookkeeping gates satisfied"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
