"""Figure 2: FindOne precision / recall / F-measure on synthetic pipelines.

Nine sub-figures: {precision, recall, F} x {single triple, single
conjunction, disjunction of conjunctions}, each a methods-by-budget
grid.  Budget groups grant every method the instances the corresponding
BugDoc algorithm used, exactly as in the paper.

Expected shape (paper): BugDoc's F-measure dominates every baseline in
all scenarios; Shortcut/Stacked match DDT on single triples and lose
precision/recall on conjunctions (truncated assertions); baselines fed
BugDoc-generated instances beat the same baselines fed SMAC instances.
"""

from __future__ import annotations

import pytest

from repro.eval import BudgetGroup, Method, render_prf_figure, run_suite
from repro.synth import Scenario, make_suite

from conftest import run_once

N_PIPELINES = 8
SUITE_KW = dict(min_parameters=3, max_parameters=7, min_values=5, max_values=10)


def _figure_for(scenario: Scenario, seed: int):
    suite = make_suite(scenario, N_PIPELINES, seed=seed, **SUITE_KW)
    return run_suite(suite, find_all=False, seed=seed)


@pytest.mark.parametrize(
    "scenario,seed,panel",
    [
        (Scenario.SINGLE_TRIPLE, 101, "2abc_single_triple"),
        (Scenario.CONJUNCTION, 102, "2def_conjunction"),
        (Scenario.DISJUNCTION, 103, "2ghi_disjunction"),
    ],
    ids=["single-triple", "conjunction", "disjunction"],
)
def test_fig2_findone(benchmark, publish, scenario, seed, panel):
    result = run_once(benchmark, _figure_for, scenario, seed)
    sections = []
    for metric, label in (
        ("precision", "Precision"),
        ("recall", "Recall"),
        ("f_measure", "F-measure"),
    ):
        sections.append(
            render_prf_figure(
                result,
                metric,
                f"Figure 2 ({panel}) FindOne {label} -- scenario: {scenario.value}",
            )
        )
    publish(f"fig{panel}", "\n\n".join(sections))

    # Shape assertions (paper's qualitative claims).
    ddt = BudgetGroup.DDT
    bugdoc_f = result.prf(Method.BUGDOC, ddt).f_measure
    for baseline in (Method.DATA_XRAY_SMAC, Method.EXPL_TABLES_SMAC):
        assert bugdoc_f >= result.prf(baseline, ddt).f_measure, (
            f"BugDoc F ({bugdoc_f:.3f}) must dominate {baseline.value} at the "
            "DDT budget"
        )
