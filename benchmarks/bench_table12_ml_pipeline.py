"""Tables 1-2 (Example 1): the Shortcut walk-through on the ML pipeline.

Regenerates the paper's running example against *real* training runs:
the initial Table 1 provenance, the new instances Shortcut creates, and
the asserted root cause (library version 2.0).
"""

from __future__ import annotations

import pytest

from repro.core import Algorithm, BugDoc
from repro.eval import format_table
from repro.workloads import ml_pipeline

from conftest import run_once


@pytest.fixture(scope="module")
def executor():
    return ml_pipeline.make_executor()


def _run_example1(executor):
    history = ml_pipeline.table1_history(executor)
    given = list(history.instances)
    bugdoc = BugDoc(executor, ml_pipeline.make_space(), history=history)
    report = bugdoc.find_one(Algorithm.SHORTCUT)
    return given, history, report


def test_table12_shortcut_walkthrough(benchmark, executor, publish):
    given, history, report = run_once(benchmark, _run_example1, executor)

    rows = []
    for instance in history.instances:
        outcome = history.outcome_of(instance)
        rows.append(
            [
                instance["dataset"],
                instance["estimator"],
                instance["library_version"],
                outcome.value,
                "given" if instance in given else "new (Shortcut)",
            ]
        )
    table = format_table(
        ["dataset", "estimator", "library version", "evaluation", "origin"],
        rows,
        title="Table 1+2: classification pipeline instances (real executions)",
    )
    cause_line = "asserted minimal definitive root cause: " + (
        " | ".join(str(c) for c in report.causes) or "(none)"
    )
    publish(
        "table12_ml_pipeline",
        f"{table}\n\n{cause_line}\nnew instances executed: "
        f"{report.instances_executed} (paper: 3 proposed, 2 charged)",
    )

    truth = ml_pipeline.true_cause()
    assert any(
        c.semantically_equals(truth, ml_pipeline.make_space())
        for c in report.causes
    )
    assert report.instances_executed == 2
