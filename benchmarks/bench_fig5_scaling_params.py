"""Figure 5: instances executed vs number of pipeline parameters.

Expected shape (paper): Shortcut and Stacked Shortcut grow *linearly*
with the parameter count; Debugging Decision Trees has no simple
relationship and can grow much faster, so "the user should choose
Shortcut or Stacked Shortcut if there are many parameters and instances
are expensive to run".
"""

from __future__ import annotations

import random

from repro.core import Algorithm, BugDoc, DDTConfig, DebugSession
from repro.eval import render_series
from repro.synth import SyntheticConfig, generate_pipeline

from conftest import run_once

PARAM_COUNTS = (3, 5, 7, 9, 11, 13, 15)
REPEATS = 3


def _instances_used(pipeline, algorithm, seed):
    rng = random.Random(seed)
    history = pipeline.initial_history(rng, size=6)
    session = DebugSession(pipeline.oracle, pipeline.space, history=history)
    bugdoc = BugDoc(session=session, seed=seed)
    if algorithm is Algorithm.DECISION_TREES:
        report = bugdoc.find_one(
            algorithm, ddt_config=DDTConfig(find_all=False, tests_per_suspect=12)
        )
    else:
        report = bugdoc.find_one(algorithm)
    return report.instances_executed


def _sweep():
    series = {"Shortcut": [], "Stacked Shortcut": [], "Debugging Decision Trees": []}
    for n_params in PARAM_COUNTS:
        config = SyntheticConfig(
            min_parameters=n_params,
            max_parameters=n_params,
            min_values=5,
            max_values=8,
            cause_arities=(2,),
            verify_minimality_up_to=0,  # skip: sizes are large by design
        )
        totals = {name: 0.0 for name in series}
        for repeat in range(REPEATS):
            pipeline = generate_pipeline(
                f"scale-{n_params}-{repeat}", config=config, seed=500 + repeat
            )
            totals["Shortcut"] += _instances_used(
                pipeline, Algorithm.SHORTCUT, repeat
            )
            totals["Stacked Shortcut"] += _instances_used(
                pipeline, Algorithm.STACKED_SHORTCUT, repeat
            )
            totals["Debugging Decision Trees"] += _instances_used(
                pipeline, Algorithm.DECISION_TREES, repeat
            )
        for name in series:
            series[name].append(totals[name] / REPEATS)
    return series


def test_fig5_instances_vs_parameters(benchmark, publish):
    series = run_once(benchmark, _sweep)
    text = render_series(
        "Figure 5: instances required per algorithm vs #parameters",
        "#parameters",
        PARAM_COUNTS,
        series,
    )
    publish("fig5_scaling_params", text)

    # Linearity shape: shortcut cost never exceeds the parameter count,
    # stacked never exceeds stack_width (4) x parameters.
    for n_params, cost in zip(PARAM_COUNTS, series["Shortcut"]):
        assert cost <= n_params
    for n_params, cost in zip(PARAM_COUNTS, series["Stacked Shortcut"]):
        assert cost <= 4 * n_params
    # Growth: 15-parameter pipelines cost more than 3-parameter ones.
    assert series["Shortcut"][-1] > series["Shortcut"][0]
