"""Sharded columnar engine: shard-ordered screening at provenance scale (PR 8).

PR 8 split :class:`repro.core.engine.ColumnarStore` into row-range
shards: per-shard column bitsets and fail masks, shard-local match
tables, and a :class:`repro.core.shards.ShardPlan` controlling shard
sizing and worker fan-out.  The headline win on a single core is the
**existence short-circuit**: screening queries (``refutes_many`` /
``supports_many``) walk shards in row order and stop at the first
shard containing a witness, touching small shard-local integers
instead of one history-wide bitset per literal.  On multi-core hosts
the same plan additionally fans shard scans across a thread pool.

This benchmark drives the screening-heavy regime those changes target:
a >=100k-row synthetic history (4+ shards at the benchmarked plan),
repeated rounds of fresh 5-literal conjunction batches through the
real engine entry points, with rows appended *between* rounds so the
run crosses a shard boundary mid-benchmark (seal + new tail shard
while queries are in flight).  Each sweep runs twice over identical
pre-generated rows:

* ``sharded``   -- the PR 8 layout (4+ shards, shard-ordered
                   short-circuit, shard-local match tables);
* ``unsharded`` -- a single monolithic shard (the PR 7 layout,
                   reproduced exactly by ``ShardPlan(shard_rows=BIG)``).

Both must produce **identical** sha256 fingerprints over every verdict
stream and the final fail mask, with **zero** reference-path
fallbacks; the run aborts otherwise.  A small end-to-end DDT FindAll
differential additionally pins tree building (the sharded Gini-split
path) to the unsharded report.  Exit status is non-zero when the
sharded sweep is not faster (quick mode) or falls below the 2x
acceptance bar (full mode).

Usage:
    PYTHONPATH=src python benchmarks/bench_columnar_shards.py [--quick]
"""

from __future__ import annotations

import argparse
import hashlib
import os
import pathlib
import random
import sys
import time

from repro.core import (
    Comparator,
    Conjunction,
    DebugSession,
    ExecutionHistory,
    Instance,
    Outcome,
    Predicate,
    StrategyContext,
)
from repro.core.bugdoc import Algorithm, BugDoc
from repro.core.shards import ShardPlan
from repro.synth import SyntheticConfig, generate_pipeline

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

N_PARAMS = 16
DOMAIN_SIZE = 8
LITERALS_PER_CONJUNCTION = 5
REQUIRED_SPEEDUP_FULL = 2.0

# Full mode: 262,072 seeded rows + 80 appended mid-run crosses the
# 4 * 65536 = 262,144 boundary, sealing a shard while screening runs.
FULL = dict(
    shard_rows=65536, seed_rows=262_072, rounds=40, batch=64, appends=2
)
# Quick mode straddles 4 * 8192 = 32,768 the same way at CI scale.
QUICK = dict(shard_rows=8192, seed_rows=32_720, rounds=8, batch=32, appends=8)

UNSHARDED_PLAN = ShardPlan(shard_rows=1 << 62, max_workers=1)


def _make_space():
    from repro.core import Parameter, ParameterSpace

    return ParameterSpace(
        [
            Parameter(f"p{i:02d}", tuple(range(DOMAIN_SIZE)))
            for i in range(N_PARAMS)
        ]
    )


def _outcome_for(codes) -> Outcome:
    """Deterministic oracle over codes: one planted cause + background."""
    if codes[0] == 0 and codes[1] <= 2:
        return Outcome.FAIL
    if sum(codes) % 11 == 0:
        return Outcome.FAIL
    return Outcome.SUCCEED


def _generate_rows(space, n_rows: int, seed: int):
    """Distinct (codes, instance, outcome) rows, shared by both sweeps."""
    rng = random.Random(seed)
    names = space.names
    domains = [space.domain(name) for name in names]
    seen = set()
    rows = []
    while len(rows) < n_rows:
        codes = tuple(rng.randrange(DOMAIN_SIZE) for _ in range(N_PARAMS))
        if codes in seen:
            continue
        seen.add(codes)
        instance = Instance(
            {name: domains[i][code] for i, (name, code) in
             enumerate(zip(names, codes))}
        )
        rows.append((codes, instance, _outcome_for(codes)))
    return rows


def _conjunction_batches(space, rounds: int, batch: int, seed: int):
    """Fresh batches of 5-literal conjunctions, mostly broad predicates.

    Broad literals (NEQ / LE / GT on mid-domain values) keep most
    conjunctions witnessed somewhere in the history, which is the
    regime the shard-ordered short-circuit targets; a narrow EQ-heavy
    tail keeps full-scan refutations in the mix.
    """
    rng = random.Random(seed)
    names = space.names
    batches = []
    for _ in range(rounds):
        conjunctions = []
        for b in range(batch):
            params = rng.sample(names, LITERALS_PER_CONJUNCTION)
            narrow = b % 16 == 0
            predicates = []
            for name in params:
                value = rng.randrange(DOMAIN_SIZE)
                if narrow:
                    comparator = Comparator.EQ
                else:
                    comparator = rng.choice(
                        (Comparator.NEQ, Comparator.NEQ, Comparator.LE,
                         Comparator.GT)
                    )
                predicates.append(Predicate(name, comparator, value))
            conjunctions.append(Conjunction(predicates))
        batches.append(conjunctions)
    return batches


def _never_called(instance):
    raise AssertionError("screening sweep must not execute the pipeline")


def run_sweep(space, rows, batches, cfg, plan: ShardPlan):
    """One screening sweep; returns (solver_seconds, fingerprint, stats)."""
    seed_rows = rows[: cfg["seed_rows"]]
    append_rows = rows[cfg["seed_rows"]:]

    history = ExecutionHistory()
    for codes, instance, outcome in seed_rows:
        history.record(instance, outcome)
    history.columnar_store_from_codes(
        space, [codes for codes, _, __ in seed_rows], plan=plan
    )
    session = DebugSession(_never_called, space, history=history)
    context = StrategyContext(session, shard_plan=plan)

    digest = hashlib.sha256()
    started = time.perf_counter()
    cursor = 0
    for conjunctions in batches:
        refuted = context.refutes_many(conjunctions)
        supported = context.supports_many(conjunctions)
        digest.update(bytes(refuted))
        digest.update(bytes(supported))
        for codes, instance, outcome in append_rows[
            cursor: cursor + cfg["appends"]
        ]:
            history.record(instance, outcome)
        cursor += cfg["appends"]
    store = history.columnar_store(space, plan=plan)
    solver = time.perf_counter() - started

    digest.update(str(store.n_rows).encode())
    digest.update(format(store.fail_mask, "x").encode())
    if context.fallback_count:
        raise SystemExit(
            f"SILENT FALLBACKS: {context.fallback_count} engine queries "
            "fell back to the reference path on a compilable workload"
        )
    return solver, digest.hexdigest(), context.engine_stats()


def ddt_differential(cfg) -> tuple[str, str]:
    """End-to-end DDT FindAll fingerprints, sharded vs unsharded.

    Covers the paths the screening sweep does not: sharded Gini
    splits, incremental tree repair, subsumption grids, and budgeted
    execution -- all must be byte-identical across plans.
    """
    fingerprints = []
    for plan in (ShardPlan(shard_rows=64, max_workers=plan_workers()),
                 UNSHARDED_PLAN):
        pipeline = generate_pipeline(
            "shard-differential",
            config=SyntheticConfig(
                min_parameters=7,
                max_parameters=7,
                min_values=4,
                max_values=5,
                cause_arities=(2, 2, 3),
                verify_minimality_up_to=0,
            ),
            seed=808,
        )
        bugdoc = BugDoc(
            pipeline.oracle, pipeline.space, budget=150, seed=13,
            shard_plan=plan,
        )
        report = bugdoc.find_all(Algorithm.DECISION_TREES)
        fingerprints.append(
            repr(
                (
                    tuple(str(c) for c in report.causes),
                    str(report.explanation),
                    report.instances_executed,
                    report.budget_exhausted,
                )
            )
        )
    return fingerprints[0], fingerprints[1]


def plan_workers() -> int:
    return min(os.cpu_count() or 1, 4)


def render(cfg, sharded_s, unsharded_s, stats) -> str:
    total_rows = cfg["seed_rows"] + cfg["rounds"] * cfg["appends"]
    queries = 2 * cfg["rounds"] * cfg["batch"]
    lines = [
        "Sharded columnar engine: shard-ordered screening vs one monolithic",
        "shard over identical pre-generated rows (fingerprints verified per",
        "sweep; rows appended between rounds cross a shard boundary mid-run)",
        "",
        f"{'rows':>8} {'queries':>8} {'shards':>7} {'workers':>8} "
        f"{'kernel':>7} {'unsharded':>10} {'sharded':>9} {'speedup':>8}",
        f"{total_rows:>8} {queries:>8} {stats.get('shards', '?'):>7} "
        f"{plan_workers():>8} {str(stats.get('kernel_path', '?')):>7} "
        f"{unsharded_s:>9.4f}s {sharded_s:>8.4f}s "
        f"{unsharded_s / sharded_s:>7.2f}x",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small history, no results file",
    )
    args = parser.parse_args(argv)
    cfg = QUICK if args.quick else FULL

    space = _make_space()
    total_rows = cfg["seed_rows"] + cfg["rounds"] * cfg["appends"]
    rows = _generate_rows(space, total_rows, seed=8)
    batches = _conjunction_batches(
        space, cfg["rounds"], cfg["batch"], seed=80
    )

    sharded_plan = ShardPlan(
        shard_rows=cfg["shard_rows"], max_workers=plan_workers()
    )
    sharded_s, sharded_fp, stats = run_sweep(
        space, rows, batches, cfg, sharded_plan
    )
    unsharded_s, unsharded_fp, _ = run_sweep(
        space, rows, batches, cfg, UNSHARDED_PLAN
    )

    if sharded_fp != unsharded_fp:
        raise SystemExit(
            f"SHARD DIVERGENCE:\n  sharded  : {sharded_fp}\n"
            f"  unsharded: {unsharded_fp}"
        )
    if stats["shards"] < 4:
        raise SystemExit(
            f"sharded sweep ran with {stats['shards']} shards; expected >= 4"
        )

    ddt_sharded, ddt_unsharded = ddt_differential(cfg)
    if ddt_sharded != ddt_unsharded:
        raise SystemExit(
            f"DDT DIVERGENCE:\n  sharded  : {ddt_sharded}\n"
            f"  unsharded: {ddt_unsharded}"
        )

    text = render(cfg, sharded_s, unsharded_s, stats)
    print(text)
    print("\nfingerprints identical; DDT differential identical; 0 fallbacks")

    if not args.quick:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "columnar_shards.txt").write_text(
            text + "\n", encoding="utf-8"
        )

    speedup = unsharded_s / sharded_s
    required = 1.0 if args.quick else REQUIRED_SPEEDUP_FULL
    if speedup < required:
        print(
            f"\nFAIL: sharded sweep speedup {speedup:.2f}x is below the "
            f"required {required:.1f}x",
            file=sys.stderr,
        )
        return 1
    print(f"\nOverall: {speedup:.2f}x less solver time with sharding")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
