"""Durable-telemetry overhead: jobs with event persistence on vs off.

PR 6 made every job's event stream durable: the service's bus writes
each event through a bounded queue to the schema-v4 ``job_events``
table on a background flusher thread.  The design claim is that
telemetry is (a) *free of observable effect* -- reports, causes, and
budgets are byte-identical with persistence on -- and (b) *cheap* --
the write-through adds at most a few percent of wall clock, because the
publish hot path only converts the event to a row and enqueues it.

This benchmark runs the same batch of DDT FindAll jobs on two services
that differ only in ``persist_events`` (both arms get a fresh SQLite
store, so the execution-cache tier behaves identically) and checks:

* every job's report fingerprint matches across arms (identity gate);
* the persisted logs are complete and replayable (each finished job's
  stream ends in its terminal event);
* wall-clock overhead of persistence stays under ``MAX_OVERHEAD``
  (min-of-repeats on both sides, so scheduler noise cannot fake a
  regression).

Usage:
    PYTHONPATH=src python benchmarks/bench_event_overhead.py [--quick]
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import tempfile
import time

from repro.core import Algorithm, DDTConfig
from repro.pipeline import LatencyExecutor
from repro.provenance import SQLiteProvenanceStore
from repro.service import DebugService, JobGoal, JobSpec
from repro.service.service import report_fingerprint
from repro.synth import SyntheticConfig, generate_pipeline

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

WORKERS = 4
BUDGET = 80
MAX_OVERHEAD = 0.05  # persistence may cost at most 5% wall clock
#: Simulated per-execution pipeline latency.  The paper's workloads run
#: minutes per pipeline instance; 20 ms is still *hostile* to telemetry
#: -- the cheaper the pipeline, the larger a fixed per-event cost
#: looms.  It cannot go much lower: scheduler noise on a batch run is
#: ~±25 ms regardless of scale, so the arm walls must sit well above
#: ~1 s for a 5% gate to resolve telemetry cost rather than jitter.
LATENCY_SECONDS = 0.02
JOB_SEEDS = (0, 0, 1, 1, 2, 2, 3, 3)


def _make_pipeline():
    config = SyntheticConfig(
        min_parameters=5,
        max_parameters=5,
        min_values=4,
        max_values=5,
        cause_arities=(1, 2),
    )
    return generate_pipeline("event-overhead", config=config, seed=42)


def _specs(pipeline, jobs: int):
    executor = LatencyExecutor(pipeline.oracle, LATENCY_SECONDS)
    return [
        JobSpec(
            job_id=f"job-{index}",
            executor=executor,
            space=pipeline.space,
            workflow="event-overhead",
            algorithm=Algorithm.DECISION_TREES,
            goal=JobGoal.FIND_ALL,
            budget=BUDGET,
            seed=seed,
            ddt_config=DDTConfig(find_all=True, tests_per_suspect=12, seed=seed),
        )
        for index, seed in enumerate(JOB_SEEDS[:jobs])
    ]


def _run_arm(pipeline, jobs: int, persist: bool, scratch: pathlib.Path):
    """One service batch; returns (wall, fingerprints, event_count)."""
    store = SQLiteProvenanceStore(
        scratch / f"{'on' if persist else 'off'}.db"
    )
    specs = _specs(pipeline, jobs)
    started = time.perf_counter()
    with DebugService(
        workers=WORKERS, store=store, persist_events=persist
    ) as service:
        results = service.run_all(specs, timeout=600)
        wall = time.perf_counter() - started
        if persist:
            # Durability check: every finished job's persisted stream is
            # complete (prefix ends in the terminal event) and the jobs
            # table carries its terminal status.
            service.events.flush()
            for spec in specs:
                rows = store.job_event_rows(spec.job_id)
                assert rows and rows[-1]["terminal"], (
                    f"{spec.job_id}: persisted stream incomplete "
                    f"({len(rows)} rows)"
                )
                assert store.job_row(spec.job_id)["status"] == "succeeded"
    fingerprints = {
        result.job_id: report_fingerprint(result) for result in results
    }
    count = store.job_event_count()
    store.close()
    return wall, fingerprints, count


def compare(jobs: int, repeats: int):
    pipeline = _make_pipeline()
    walls = {"off": [], "on": []}
    events = 0
    baseline_fingerprints = None
    with tempfile.TemporaryDirectory(prefix="event-overhead-") as scratch:
        scratch = pathlib.Path(scratch)
        for repeat in range(repeats):
            repeat_dir = scratch / f"r{repeat}"
            repeat_dir.mkdir()
            for arm, persist in (("off", False), ("on", True)):
                wall, fingerprints, count = _run_arm(
                    pipeline, jobs, persist, repeat_dir
                )
                walls[arm].append(wall)
                if persist:
                    events = count
                if baseline_fingerprints is None:
                    baseline_fingerprints = fingerprints
                elif fingerprints != baseline_fingerprints:
                    raise SystemExit(
                        f"REPORT DIVERGENCE (persist_events={persist}, "
                        f"repeat {repeat}):\n"
                        f"  baseline: {baseline_fingerprints}\n"
                        f"  this arm: {fingerprints}"
                    )
    return walls, events


def render(walls, events: int, jobs: int, repeats: int) -> str:
    off, on = min(walls["off"]), min(walls["on"])
    overhead = (on - off) / off if off else 0.0
    lines = [
        "Durable event-log overhead: persist_events on vs off",
        f"({jobs} DDT FindAll jobs per arm, {WORKERS} workers, budget "
        f"{BUDGET}; min of {repeats} repeat(s); identical report "
        "fingerprints verified across every arm and repeat)",
        "",
        f"{'arm':>16} {'wall (min)':>12} {'mean':>9}",
        f"{'persistence off':>16} {off:>11.3f}s "
        f"{sum(walls['off']) / len(walls['off']):>8.3f}s",
        f"{'persistence on':>16} {on:>11.3f}s "
        f"{sum(walls['on']) / len(walls['on']):>8.3f}s",
        "",
        f"events persisted per batch: {events} "
        f"({events / jobs:.0f} per job)",
        f"overhead: {overhead:+.2%} ({(on - off) * 1000:+.1f} ms absolute, "
        f"{(on - off) / events * 1e6:.0f} us/event; "
        f"gate: <= {MAX_OVERHEAD:.0%})",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: fewer jobs and repeats, no results file",
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--jobs", type=int, default=None)
    args = parser.parse_args(argv)

    jobs = args.jobs or (4 if args.quick else len(JOB_SEEDS))
    repeats = args.repeats or (2 if args.quick else 3)

    walls, events = compare(jobs, repeats)
    text = render(walls, events, jobs, repeats)
    print(text)

    if not args.quick:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "event_overhead.txt").write_text(
            text + "\n", encoding="utf-8"
        )

    off, on = min(walls["off"]), min(walls["on"])
    overhead = (on - off) / off if off else 0.0
    if overhead > MAX_OVERHEAD:
        print(
            f"\nFAIL: durable telemetry costs {overhead:.2%} wall clock, "
            f"above the {MAX_OVERHEAD:.0%} budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
