"""Solver-overhead benchmark: columnar engine vs dict-based reference.

Measures *pure debugger CPU time* -- the cost of tree induction,
hypothesis checks, subsumption filtering, and simplification -- by
running DDT FindAll over synthetic pipelines (the Figure 5 sweep shape,
up to 15 parameters) behind a cached executor whose time is subtracted
from the wall clock.  The session starts from a provenance-rich history
(the warm cross-session-cache regime PR 1 established), which is where
the solver's own scan costs dominate.

Both engines must produce **identical** reports, instance counts, and
budgets; the run aborts otherwise.  Exit status is non-zero when the
columnar engine is not faster overall, or (full mode) when the
15-parameter speedup falls below the 5x acceptance bar, so CI can run
``--quick`` as a smoke gate.

Usage:
    PYTHONPATH=src python benchmarks/bench_engine_overhead.py [--quick]
"""

from __future__ import annotations

import argparse
import pathlib
import random
import sys
import time

from repro.core import Algorithm, BugDoc, DDTConfig, DebugSession
from repro.synth import SyntheticConfig, generate_pipeline

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

FULL_PARAM_COUNTS = (3, 5, 7, 9, 11, 13, 15)
QUICK_PARAM_COUNTS = (5, 9)
CAUSE_ARITIES = (2, 2, 3)
REQUIRED_SPEEDUP_AT_MAX = 5.0


class CachedTimedExecutor:
    """Memoizing executor that accounts its own wall-clock time.

    Pipeline executions are not what this benchmark measures; the
    accumulated executor time is subtracted from each run's wall clock,
    leaving pure solver time.
    """

    def __init__(self, oracle):
        self._oracle = oracle
        self._cache = {}
        self.seconds = 0.0
        self.calls = 0

    def __call__(self, instance):
        started = time.perf_counter()
        self.calls += 1
        outcome = self._cache.get(instance)
        if outcome is None:
            outcome = self._oracle(instance)
            self._cache[instance] = outcome
        self.seconds += time.perf_counter() - started
        return outcome


def run_once(n_params: int, engine: str, seed: int, history_size: int):
    """One DDT FindAll run; returns (solver_seconds, fingerprint)."""
    config = SyntheticConfig(
        min_parameters=n_params,
        max_parameters=n_params,
        min_values=5,
        max_values=8,
        cause_arities=CAUSE_ARITIES,
        verify_minimality_up_to=0,  # sizes are large by design
    )
    pipeline = generate_pipeline(f"engine-{n_params}", config=config, seed=500 + seed)
    rng = random.Random(seed)
    history = pipeline.initial_history(rng, size=history_size)
    executor = CachedTimedExecutor(pipeline.oracle)
    session = DebugSession(executor, pipeline.space, history=history)
    bugdoc = BugDoc(session=session, seed=seed, engine=engine)
    started = time.perf_counter()
    report = bugdoc.find_all(
        Algorithm.DECISION_TREES, ddt_config=DDTConfig(find_all=True, engine=engine)
    )
    wall = time.perf_counter() - started
    fingerprint = (
        [str(c) for c in report.causes],
        str(report.explanation),
        report.instances_executed,
        report.budget_exhausted,
        report.ddt_result.rounds,
        tuple(report.ddt_result.tree_sizes),
        session.budget.spent,
        len(session.history),
    )
    return wall - executor.seconds, fingerprint


def sweep(param_counts, repeats: int, history_size: int):
    rows = []
    for n_params in param_counts:
        ref_total = col_total = 0.0
        detail = None
        for repeat in range(repeats):
            col_time, col_fp = run_once(n_params, "columnar", repeat, history_size)
            ref_time, ref_fp = run_once(n_params, "reference", repeat, history_size)
            if col_fp != ref_fp:
                raise SystemExit(
                    f"ENGINE DIVERGENCE at {n_params} params, seed {repeat}:\n"
                    f"  columnar : {col_fp}\n  reference: {ref_fp}"
                )
            col_total += col_time
            ref_total += ref_time
            detail = col_fp
        rows.append(
            {
                "n_params": n_params,
                "reference_s": ref_total / repeats,
                "columnar_s": col_total / repeats,
                "speedup": ref_total / col_total if col_total else float("inf"),
                "causes": len(detail[0]),
                "rounds": detail[4],
                "history": detail[7],
                "executed": detail[2],
            }
        )
    return rows


def render(rows, repeats: int, history_size: int) -> str:
    lines = [
        "Engine overhead: DDT FindAll solver time, columnar vs reference",
        f"(cached executor; seeded history={history_size}; "
        f"cause arities={CAUSE_ARITIES}; mean of {repeats} repeat(s); "
        "identical reports/instances/budgets verified per run)",
        "",
        f"{'#params':>8} {'reference':>12} {'columnar':>12} {'speedup':>9} "
        f"{'causes':>7} {'rounds':>7} {'history':>8} {'executed':>9}",
    ]
    for row in rows:
        lines.append(
            f"{row['n_params']:>8} {row['reference_s']:>11.4f}s "
            f"{row['columnar_s']:>11.4f}s {row['speedup']:>8.1f}x "
            f"{row['causes']:>7} {row['rounds']:>7} {row['history']:>8} "
            f"{row['executed']:>9}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small sweep, one repeat, no results file",
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--history-size", type=int, default=None)
    args = parser.parse_args(argv)

    if args.quick:
        param_counts = QUICK_PARAM_COUNTS
        repeats = args.repeats or 1
        history_size = args.history_size or 120
    else:
        param_counts = FULL_PARAM_COUNTS
        repeats = args.repeats or 3
        history_size = args.history_size or 300

    rows = sweep(param_counts, repeats, history_size)
    text = render(rows, repeats, history_size)
    print(text)

    if not args.quick:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "engine_overhead.txt").write_text(
            text + "\n", encoding="utf-8"
        )

    total_ref = sum(row["reference_s"] for row in rows)
    total_col = sum(row["columnar_s"] for row in rows)
    if total_col >= total_ref:
        print(
            f"\nFAIL: columnar engine ({total_col:.4f}s) is not faster than "
            f"the reference path ({total_ref:.4f}s)",
            file=sys.stderr,
        )
        return 1
    print(f"\nOverall: {total_ref / total_col:.1f}x less solver time")

    if not args.quick:
        at_max = rows[-1]
        if at_max["speedup"] < REQUIRED_SPEEDUP_AT_MAX:
            print(
                f"\nFAIL: speedup at {at_max['n_params']} parameters is "
                f"{at_max['speedup']:.1f}x, below the required "
                f"{REQUIRED_SPEEDUP_AT_MAX:.0f}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
