"""Retention-scale telemetry: rollup-served aggregates vs raw rescans.

PR 10 added incremental pre-aggregation (``job_rollups`` maintained in
the same transaction as every event batch) and retention compaction
(terminal jobs' raw events fold into ``job_summaries``).  The design
claims:

* **speed** -- ``repro query agg`` over ``span:``/``count:`` metrics
  answers from the rollups in time proportional to the number of
  *jobs*, not the number of *events*; at retention scale (a million
  raw events) the rollup path must be at least ``MIN_SPEEDUP``x faster
  than the raw-event rescan;
* **exactness** -- the rollup answer is byte-identical (JSON bytes) to
  the raw scan, metric for metric, before compaction -- and unchanged
  after compaction deletes the raw rows;
* **determinism** -- the longitudinal dashboard built over a fixed
  corpus renders byte-identical JSON across runs and machines; the
  committed snapshot under ``benchmarks/results/`` is the regression
  baseline (``--update-snapshot`` regenerates it).

Usage:
    PYTHONPATH=src python benchmarks/bench_telemetry_retention.py [--quick]
    PYTHONPATH=src python benchmarks/bench_telemetry_retention.py --update-snapshot
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import tempfile
import time

from repro.obs.dashboard import build_dashboard, render_dashboard
from repro.obs.query import QueryEngine
from repro.obs.retention import RetentionPolicy, compact
from repro.provenance import SQLiteProvenanceStore

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SNAPSHOT_PATH = RESULTS_DIR / "dashboard_snapshot.json"

MIN_SPEEDUP = 5.0  # rollup agg must beat the raw rescan by this factor
#: Fixed epoch so windows, buckets, and the committed snapshot are
#: machine-independent.
BASE_TS = 1_700_000_000.0
SPAN_NAMES = ("solver", "execution", "persistence")
STATUSES = ("succeeded", "succeeded", "succeeded", "failed", "cancelled")

#: The aggregate suite both paths answer (byte-compared).
METRICS = (
    ("span:solver", "sum"), ("span:solver", "p95"), ("span:solver", "mean"),
    ("span:execution", "sum"), ("span:execution", "p50"),
    ("span:persistence", "max"), ("count:span", "sum"),
    ("count:suspect_confirmed", "count"), ("count:finished", "sum"),
)


def build_corpus(
    store: SQLiteProvenanceStore, jobs: int, events_per_job: int, seed: int = 11
) -> int:
    """Synthesize a deterministic terminal-job event corpus."""
    rng = random.Random(seed)
    total = 0
    for index in range(jobs):
        job_id = f"job-{index:05d}"
        workflow = f"family-{index % 4}"
        created = BASE_TS + index * 13.0
        status = STATUSES[index % len(STATUSES)]
        store.begin_job(
            job_id, workflow=workflow, algorithm="combined",
            spec_fingerprint=f"fp-{index % 7}", created_at=created,
        )
        rows = []
        for seq in range(events_per_job):
            ts = created + seq * 0.01
            if seq == 0:
                kind, payload = "submitted", {}
            elif seq == 1:
                kind, payload = "started", {}
            elif seq == events_per_job - 2:
                kind, payload = "metrics_snapshot", {
                    "cache": {
                        "hits": rng.randrange(50),
                        "misses": rng.randrange(20),
                        "executions": rng.randrange(60),
                    }
                }
            elif seq == events_per_job - 1:
                kind, payload = "finished", {"status": status}
            elif seq % 5 == 2:
                kind, payload = "suspect_confirmed", {"suspect": seq}
            else:
                kind, payload = "span", {
                    "name": SPAN_NAMES[seq % len(SPAN_NAMES)],
                    "seconds": rng.random() * 3.0,
                }
            rows.append({
                "job_id": job_id, "seq": seq, "kind": kind, "ts_wall": ts,
                "ts_monotonic": float(seq),
                "terminal": seq == events_per_job - 1, "payload": payload,
            })
        store.append_job_events(rows)
        store.finish_job(
            job_id, status=status, report_fingerprint=f"r-{index}",
            budget_spent=index % 40,
            wall_seconds=events_per_job * 0.01,
            finished_at=created + (events_per_job - 1) * 0.01,
        )
        total += len(rows)
    return total


def _agg_suite(engine: QueryEngine) -> bytes:
    answers = {
        f"{metric}/{stat}": engine.aggregate(
            metric, stat=stat, group_by="workflow"
        )
        for metric, stat in METRICS
    }
    return json.dumps(answers, sort_keys=True).encode()


def _time_suite(store, use_rollups: bool, repeats: int) -> tuple[float, bytes]:
    best, answer = float("inf"), b""
    for __ in range(repeats):
        engine = QueryEngine(store, use_rollups=use_rollups)
        started = time.perf_counter()
        answer = _agg_suite(engine)
        best = min(best, time.perf_counter() - started)
        expected = (len(METRICS), 0) if use_rollups else (0, len(METRICS))
        assert (engine.rollup_hits, engine.rollup_misses) == expected
    return best, answer


def snapshot_document() -> dict:
    """The dashboard over a small fixed corpus, half of it compacted --
    exercises both the summary and the on-the-fly path."""
    with tempfile.TemporaryDirectory(prefix="retention-snap-") as scratch:
        store = SQLiteProvenanceStore(pathlib.Path(scratch) / "snap.db")
        try:
            build_corpus(store, jobs=60, events_per_job=40, seed=7)
            compact(
                store,
                RetentionPolicy(max_raw_jobs=30),
                now=BASE_TS + 1e6,
            )
            return build_dashboard(store, bucket_seconds=3600.0)
        finally:
            store.close()


def run(jobs: int, events_per_job: int, repeats: int) -> tuple[dict, list[str]]:
    report: dict = {}
    with tempfile.TemporaryDirectory(prefix="retention-bench-") as scratch:
        store = SQLiteProvenanceStore(pathlib.Path(scratch) / "bench.db")
        try:
            started = time.perf_counter()
            total = build_corpus(store, jobs, events_per_job)
            report["ingest_wall"] = time.perf_counter() - started
            report["events"] = total
            report["jobs"] = jobs

            raw_wall, raw_answer = _time_suite(store, False, repeats)
            rollup_wall, rollup_answer = _time_suite(store, True, repeats)
            if rollup_answer != raw_answer:
                raise SystemExit(
                    "DIFFERENTIAL FAILURE: rollup-served aggregates are "
                    "not byte-identical to the raw rescan"
                )
            report["raw_wall"] = raw_wall
            report["rollup_wall"] = rollup_wall
            report["speedup"] = raw_wall / rollup_wall if rollup_wall else 0.0

            started = time.perf_counter()
            swept = compact(store, RetentionPolicy(), compact_all=True)
            report["compact_wall"] = time.perf_counter() - started
            report["compacted"] = swept["compacted"]
            report["events_deleted"] = swept["events_deleted"]
            post_wall, post_answer = _time_suite(store, True, repeats)
            if post_answer != raw_answer:
                raise SystemExit(
                    "DIFFERENTIAL FAILURE: aggregates changed after "
                    "compaction deleted the raw events"
                )
            report["post_compact_wall"] = post_wall
        finally:
            store.close()

    lines = [
        "Retention-scale telemetry: rollup-served agg vs raw rescan",
        f"({report['jobs']} terminal jobs x {events_per_job} events = "
        f"{report['events']} raw events; min of {repeats} repeat(s); "
        f"{len(METRICS)} grouped aggregates per suite, byte-compared)",
        "",
        f"{'stage':>28} {'wall':>12}",
        f"{'ingest (rollups inline)':>28} {report['ingest_wall']:>11.3f}s"
        f"  ({report['events'] / report['ingest_wall']:,.0f} events/s)",
        f"{'agg suite, raw rescan':>28} {report['raw_wall']:>11.3f}s",
        f"{'agg suite, rollup-served':>28} {report['rollup_wall']:>11.3f}s"
        f"  ({report['speedup']:.1f}x; gate >= {MIN_SPEEDUP:.0f}x)",
        f"{'compact --all':>28} {report['compact_wall']:>11.3f}s"
        f"  ({report['compacted']} jobs, "
        f"{report['events_deleted']} events deleted)",
        f"{'agg suite, post-compact':>28} {report['post_compact_wall']:>11.3f}s",
        "",
        "rollup answers byte-identical to raw rescans before compaction "
        "and unchanged after it",
    ]
    return report, lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI gate mode: 100k events, no results file",
    )
    parser.add_argument(
        "--update-snapshot",
        action="store_true",
        help="regenerate the committed dashboard snapshot and exit",
    )
    args = parser.parse_args(argv)

    if args.update_snapshot:
        RESULTS_DIR.mkdir(exist_ok=True)
        SNAPSHOT_PATH.write_text(
            render_dashboard(snapshot_document()), encoding="utf-8"
        )
        print(f"snapshot written to {SNAPSHOT_PATH}")
        return 0

    jobs, events_per_job = (400, 250) if args.quick else (2000, 500)
    repeats = 2 if args.quick else 3
    report, lines = run(jobs, events_per_job, repeats)
    text = "\n".join(lines)
    print(text)

    failures = []
    if report["speedup"] < MIN_SPEEDUP:
        failures.append(
            f"rollup speedup {report['speedup']:.1f}x is below the "
            f"{MIN_SPEEDUP:.0f}x gate"
        )

    rendered = render_dashboard(snapshot_document())
    if SNAPSHOT_PATH.exists():
        committed = SNAPSHOT_PATH.read_text(encoding="utf-8")
        if rendered != committed:
            failures.append(
                "dashboard drifted from the committed snapshot "
                f"({SNAPSHOT_PATH}); inspect the diff, then rerun with "
                "--update-snapshot if the movement is intentional"
            )
        else:
            print("dashboard snapshot: byte-identical to committed baseline")
    else:
        failures.append(
            f"no committed snapshot at {SNAPSHOT_PATH}; run with "
            "--update-snapshot once"
        )

    if not args.quick:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "telemetry_retention.txt").write_text(
            text + "\n", encoding="utf-8"
        )

    for failure in failures:
        print(f"\nFAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
