"""Strategy-layer solver overhead: columnar engine vs reference scans.

PR 2 put Debugging Decision Trees on the columnar engine; this
benchmark guards the follow-up port of the *strategy layer* -- the
Shortcut / Stacked Shortcut history scans (`disjoint_successes`,
Hamming-distance ranking, `mutually_disjoint_successes`, the
success-superset sanity check) now routed through `StrategyContext`.

Two workloads, both measured as pure solver time (a cached executor's
wall clock is subtracted):

* ``combined`` -- BugDoc's COMBINED FindAll (Stacked Shortcut feeding
  DDT, the paper's Figure 7 configuration) over a fig5-style parameter
  sweep with a provenance-rich seeded history; this is the
  "Shortcut+Stacked-enabled run" of the acceptance bar.
* ``stacked`` -- Stacked Shortcut alone, re-anchored on many failing
  instances over a large seeded history, which isolates the scan costs
  the strategy port moved onto bitsets.

Both engines must produce **identical** reports, instance counts, and
budgets; the run aborts otherwise.  Exit status is non-zero when the
columnar engine is not faster overall, or (full mode) when the
12+-parameter combined speedup falls below the 5x acceptance bar.

Usage:
    PYTHONPATH=src python benchmarks/bench_strategy_overhead.py [--quick]
"""

from __future__ import annotations

import argparse
import pathlib
import random
import sys
import time

from repro.core import Algorithm, BugDoc, DDTConfig, DebugSession, InstanceBudget
from repro.core.stacked import stacked_shortcut
from repro.synth import SyntheticConfig, generate_pipeline

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

FULL_PARAM_COUNTS = (5, 7, 9, 11, 13)
QUICK_PARAM_COUNTS = (5, 9)
CAUSE_ARITIES = (2, 2, 3)
REQUIRED_SPEEDUP_AT_MAX = 5.0
STACKED_ANCHORS = 40


class CachedTimedExecutor:
    """Memoizing executor that accounts its own wall-clock time."""

    def __init__(self, oracle):
        self._oracle = oracle
        self._cache = {}
        self.seconds = 0.0
        self.calls = 0

    def __call__(self, instance):
        started = time.perf_counter()
        self.calls += 1
        outcome = self._cache.get(instance)
        if outcome is None:
            outcome = self._oracle(instance)
            self._cache[instance] = outcome
        self.seconds += time.perf_counter() - started
        return outcome


def _pipeline_for(n_params: int, seed: int):
    config = SyntheticConfig(
        min_parameters=n_params,
        max_parameters=n_params,
        min_values=5,
        max_values=8,
        cause_arities=CAUSE_ARITIES,
        verify_minimality_up_to=0,  # sizes are large by design
    )
    return generate_pipeline(
        f"strategy-{n_params}", config=config, seed=900 + seed
    )


def run_combined(n_params: int, engine: str, seed: int, history_size: int):
    """One COMBINED FindAll run; returns (solver_seconds, fingerprint)."""
    pipeline = _pipeline_for(n_params, seed)
    rng = random.Random(seed)
    history = pipeline.initial_history(rng, size=history_size)
    executor = CachedTimedExecutor(pipeline.oracle)
    session = DebugSession(executor, pipeline.space, history=history)
    bugdoc = BugDoc(session=session, seed=seed, engine=engine)
    started = time.perf_counter()
    report = bugdoc.find_all(
        Algorithm.COMBINED,
        ddt_config=DDTConfig(find_all=True, engine=engine),
    )
    wall = time.perf_counter() - started
    stacked = report.stacked_result
    fingerprint = (
        [str(c) for c in report.causes],
        str(report.explanation),
        report.instances_executed,
        report.budget_exhausted,
        None if stacked is None else str(stacked.cause),
        None if stacked is None else stacked.good_instances,
        None if stacked is None else stacked.instances_executed,
        report.ddt_result.rounds if report.ddt_result else None,
        session.budget.spent,
        len(session.history),
    )
    return wall - executor.seconds, fingerprint


def run_stacked(n_params: int, engine: str, seed: int, history_size: int):
    """Stacked Shortcut re-anchored on many failures over a large log."""
    pipeline = _pipeline_for(n_params, seed)
    rng = random.Random(seed)
    history = pipeline.initial_history(rng, size=history_size)
    executor = CachedTimedExecutor(pipeline.oracle)
    session = DebugSession(
        executor, pipeline.space, history=history, budget=InstanceBudget(None)
    )
    anchors = session.history.failures[:STACKED_ANCHORS]
    started = time.perf_counter()
    results = []
    from repro.core import StrategyContext

    context = StrategyContext.for_session(session, engine=engine)
    for anchor in anchors:
        result = stacked_shortcut(session, failing=anchor, context=context)
        results.append(
            (
                str(result.cause),
                result.good_instances,
                result.instances_executed,
                tuple(
                    (str(r.cause), r.rejected_by_sanity_check, r.complete)
                    for r in result.runs
                ),
            )
        )
    wall = time.perf_counter() - started
    fingerprint = (tuple(results), session.budget.spent, len(session.history))
    return wall - executor.seconds, fingerprint


def sweep(param_counts, repeats: int, combined_history: int, stacked_history: int):
    rows = []
    for mode, runner, history_size in (
        ("combined", run_combined, combined_history),
        ("stacked", run_stacked, stacked_history),
    ):
        for n_params in param_counts:
            ref_total = col_total = 0.0
            for repeat in range(repeats):
                col_time, col_fp = runner(
                    n_params, "columnar", repeat, history_size
                )
                ref_time, ref_fp = runner(
                    n_params, "reference", repeat, history_size
                )
                if col_fp != ref_fp:
                    raise SystemExit(
                        f"ENGINE DIVERGENCE ({mode}) at {n_params} params, "
                        f"seed {repeat}:\n  columnar : {col_fp}\n"
                        f"  reference: {ref_fp}"
                    )
                col_total += col_time
                ref_total += ref_time
            rows.append(
                {
                    "mode": mode,
                    "n_params": n_params,
                    "reference_s": ref_total / repeats,
                    "columnar_s": col_total / repeats,
                    "speedup": (
                        ref_total / col_total if col_total else float("inf")
                    ),
                    "history": history_size,
                }
            )
    return rows


def render(rows, repeats: int) -> str:
    lines = [
        "Strategy-layer overhead: Shortcut+Stacked-enabled solver time,",
        "columnar vs reference engines (cached executor; identical",
        f"reports/budgets verified per run; mean of {repeats} repeat(s))",
        "",
        f"{'mode':>9} {'#params':>8} {'history':>8} {'reference':>12} "
        f"{'columnar':>12} {'speedup':>9}",
    ]
    for row in rows:
        lines.append(
            f"{row['mode']:>9} {row['n_params']:>8} {row['history']:>8} "
            f"{row['reference_s']:>11.4f}s {row['columnar_s']:>11.4f}s "
            f"{row['speedup']:>8.1f}x"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small sweep, one repeat, no results file",
    )
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)

    if args.quick:
        param_counts = QUICK_PARAM_COUNTS
        repeats = args.repeats or 1
        combined_history, stacked_history = 120, 400
    else:
        param_counts = FULL_PARAM_COUNTS
        repeats = args.repeats or 3
        combined_history, stacked_history = 300, 1500

    rows = sweep(param_counts, repeats, combined_history, stacked_history)
    text = render(rows, repeats)
    print(text)

    if not args.quick:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "strategy_overhead.txt").write_text(
            text + "\n", encoding="utf-8"
        )

    total_ref = sum(row["reference_s"] for row in rows)
    total_col = sum(row["columnar_s"] for row in rows)
    if total_col >= total_ref:
        print(
            f"\nFAIL: columnar engine ({total_col:.4f}s) is not faster than "
            f"the reference path ({total_ref:.4f}s)",
            file=sys.stderr,
        )
        return 1
    print(f"\nOverall: {total_ref / total_col:.1f}x less solver time")

    if not args.quick:
        gated = [
            row
            for row in rows
            if row["mode"] == "combined" and row["n_params"] >= 12
        ]
        for row in gated:
            if row["speedup"] < REQUIRED_SPEEDUP_AT_MAX:
                print(
                    f"\nFAIL: combined speedup at {row['n_params']} "
                    f"parameters is {row['speedup']:.1f}x, below the "
                    f"required {REQUIRED_SPEEDUP_AT_MAX:.0f}x",
                    file=sys.stderr,
                )
                return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
