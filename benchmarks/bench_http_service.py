"""HTTP front-end overhead: submit/stream over HTTP vs in-process run_all.

PR 9 put an HTTP/JSON API (``repro serve --http``) and a durable job
queue in front of the debugging service.  The design claim is that the
front-end is a *thin* veneer: admission writes one queue row, event
streaming rides the existing durable bus, and the search itself runs
on the same service -- so a batch submitted and streamed over HTTP
costs at most a few percent more wall clock than calling
``DebugService.run_all`` directly.

Both arms run the *same* payloads (the durable-queue codec builds the
specs, so the arms cannot drift apart) against fresh SQLite stores:

* **in-process**: ``spec_from_payload`` + ``run_all`` on a bare
  service;
* **http**: ``POST /jobs`` per payload against a live
  :class:`DebugServiceHTTP` (durable queue on), then NDJSON-stream
  every job's event log to its terminal event.

Checks:

* per-job report fingerprints match across arms (identity gate);
* every HTTP job's queue row lands ``done`` (durability gate);
* HTTP wall <= in-process wall * (1 + MAX_OVERHEAD) + ABS_SLACK
  (min-of-repeats on both sides; the absolute slack absorbs fixed
  per-batch socket setup on very fast batches).

Usage:
    PYTHONPATH=src python benchmarks/bench_http_service.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time
import urllib.request

from repro.exec import ExecutorSpec
from repro.provenance import SQLiteProvenanceStore
from repro.service import (
    DebugService,
    DebugServiceHTTP,
    spec_from_payload,
    space_to_payload,
)
from repro.service.service import report_fingerprint
from repro.workloads import gan_training

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

WORKERS = 4
BUDGET = 150
MAX_OVERHEAD = 0.10  # the HTTP veneer may cost at most 10% wall clock
ABS_SLACK = 0.5  # seconds; fixed connection setup on sub-second batches
JOB_SEEDS = (0, 1, 2, 3, 4, 5)


def _payloads(jobs: int) -> list[dict]:
    executor_wire = ExecutorSpec.from_builder(
        "repro.workloads.gan_training:make_executor"
    ).to_wire()
    space_payload = space_to_payload(gan_training.make_space())
    return [
        {
            "job_id": f"gan-{index}",
            "workflow": "gan-http",
            "algorithm": "decision_trees",
            "goal": "find_all",
            "budget": BUDGET,
            "seed": seed,
            "executor_spec": executor_wire,
            "space": space_payload,
        }
        for index, seed in enumerate(JOB_SEEDS[:jobs])
    ]


def _run_inprocess(payloads, scratch: pathlib.Path):
    """Baseline arm: the codec's specs straight into run_all."""
    store = SQLiteProvenanceStore(scratch / "base.db")
    specs = [spec_from_payload(dict(payload)) for payload in payloads]
    started = time.perf_counter()
    with DebugService(workers=WORKERS, store=store) as service:
        results = service.run_all(specs, timeout=600)
    wall = time.perf_counter() - started
    fingerprints = {
        result.job_id: report_fingerprint(result) for result in results
    }
    store.close()
    return wall, fingerprints


def _run_http(payloads, scratch: pathlib.Path):
    """HTTP arm: POST every payload, then stream each log to its end."""
    store = SQLiteProvenanceStore(scratch / "http.db")
    service = DebugService(workers=WORKERS, store=store)
    results = {}
    try:
        with DebugServiceHTTP(service, store=store) as api:
            base = f"http://127.0.0.1:{api.port}"
            started = time.perf_counter()
            for payload in payloads:
                request = urllib.request.Request(
                    f"{base}/jobs",
                    data=json.dumps(payload).encode("utf-8"),
                    method="POST",
                )
                with urllib.request.urlopen(request, timeout=60) as response:
                    assert response.status == 201, response.status
            for payload in payloads:
                job_id = payload["job_id"]
                with urllib.request.urlopen(
                    f"{base}/jobs/{job_id}/events?timeout=600", timeout=600
                ) as response:
                    last = None
                    for line in response:
                        last = json.loads(line)
                    assert last is not None and last["terminal"], job_id
            wall = time.perf_counter() - started
            for payload in payloads:
                job_id = payload["job_id"]
                results[job_id] = report_fingerprint(
                    service.jobs[job_id].result(timeout=60)
                )
                row = store.queue_row(job_id)
                assert row is not None and row["status"] == "done", (
                    f"{job_id}: queue row {row and row['status']!r}, "
                    "expected done"
                )
    finally:
        service.shutdown()
        store.close()
    return wall, results


def compare(jobs: int, repeats: int):
    payloads = _payloads(jobs)
    walls = {"inprocess": [], "http": []}
    baseline_fingerprints = None
    with tempfile.TemporaryDirectory(prefix="http-overhead-") as scratch:
        scratch = pathlib.Path(scratch)
        for repeat in range(repeats):
            repeat_dir = scratch / f"r{repeat}"
            repeat_dir.mkdir()
            for arm, runner in (
                ("inprocess", _run_inprocess),
                ("http", _run_http),
            ):
                wall, fingerprints = runner(payloads, repeat_dir)
                walls[arm].append(wall)
                if baseline_fingerprints is None:
                    baseline_fingerprints = fingerprints
                elif fingerprints != baseline_fingerprints:
                    raise SystemExit(
                        f"REPORT DIVERGENCE ({arm}, repeat {repeat}):\n"
                        f"  baseline: {baseline_fingerprints}\n"
                        f"  this arm: {fingerprints}"
                    )
    return walls


def render(walls, jobs: int, repeats: int) -> str:
    base, http = min(walls["inprocess"]), min(walls["http"])
    overhead = (http - base) / base if base else 0.0
    lines = [
        "HTTP front-end overhead: submit+stream over HTTP vs run_all",
        f"({jobs} gan DDT FindAll jobs per arm, {WORKERS} workers, budget "
        f"{BUDGET}; min of {repeats} repeat(s); identical report "
        "fingerprints verified across every arm and repeat)",
        "",
        f"{'arm':>12} {'wall (min)':>12} {'mean':>9}",
        f"{'in-process':>12} {base:>11.3f}s "
        f"{sum(walls['inprocess']) / len(walls['inprocess']):>8.3f}s",
        f"{'http':>12} {http:>11.3f}s "
        f"{sum(walls['http']) / len(walls['http']):>8.3f}s",
        "",
        f"overhead: {overhead:+.2%} ({(http - base) * 1000:+.1f} ms "
        f"absolute; gate: <= {MAX_OVERHEAD:.0%} + {ABS_SLACK:.1f}s slack)",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: fewer jobs and repeats, no results file",
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--jobs", type=int, default=None)
    args = parser.parse_args(argv)

    jobs = args.jobs or (3 if args.quick else len(JOB_SEEDS))
    repeats = args.repeats or (2 if args.quick else 3)

    walls = compare(jobs, repeats)
    text = render(walls, jobs, repeats)
    print(text)

    if not args.quick:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "http_service.txt").write_text(
            text + "\n", encoding="utf-8"
        )

    base, http = min(walls["inprocess"]), min(walls["http"])
    if http > base * (1 + MAX_OVERHEAD) + ABS_SLACK:
        overhead = (http - base) / base if base else 0.0
        print(
            f"\nFAIL: the HTTP front-end costs {overhead:.2%} wall clock "
            f"({http - base:+.3f}s), above the {MAX_OVERHEAD:.0%} budget "
            f"(+{ABS_SLACK:.1f}s slack)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
