"""Service throughput: N concurrent jobs sharing a scheduler + cache
vs. the same N jobs run serially without sharing.

The paper's dispatcher (Section 5, Figure 6) parallelized *within* one
debugging session; the service layer multiplexes many users' jobs over
one worker pool and deduplicates identical pipeline instances across
jobs via the cross-session execution cache.  This benchmark runs the
same job mix both ways on a latency-simulated executor (standing in for
the 20-minute / 10-hour real pipelines) and reports:

* total pipeline instances actually executed (the paper's cost unit),
* wall-clock time,
* per-job correctness: every service job must assert exactly the causes
  and charge exactly the budget its standalone serial run does.

Expected shape: the service arm executes measurably fewer instances
(cache sharing across jobs with overlapping seeds) and finishes several
times faster (shared worker pool hides the latency), while budgets and
reports stay identical.
"""

from __future__ import annotations

import time

from repro.core import Algorithm, BugDoc, DDTConfig, DebugSession, InstanceBudget
from repro.eval import format_table
from repro.pipeline import CountingExecutor, LatencyExecutor
from repro.service import DebugService, JobGoal, JobSpec
from repro.synth import SyntheticConfig, generate_pipeline

from conftest import run_once

LATENCY_SECONDS = 0.005
WORKERS = 8
BUDGET = 80
# 8 jobs from 4 seed pools: pairs run identical searches (think: two
# users debugging the same failing pipeline), odd seeds overlap less.
JOB_SEEDS = (0, 0, 1, 1, 2, 2, 3, 3)


def _make_pipeline():
    config = SyntheticConfig(
        min_parameters=5,
        max_parameters=5,
        min_values=4,
        max_values=5,
        cause_arities=(1, 2),
    )
    return generate_pipeline("service-throughput", config=config, seed=42)


def _job_configs():
    return [
        {
            "job_id": f"job-{index}",
            "seed": seed,
            "ddt_config": DDTConfig(find_all=True, tests_per_suspect=12, seed=seed),
        }
        for index, seed in enumerate(JOB_SEEDS)
    ]


def _run_serial(pipeline):
    """Baseline: each job standalone, sequential, no shared anything."""
    counting = CountingExecutor(pipeline.oracle)
    executor = LatencyExecutor(counting, LATENCY_SECONDS)
    reports = {}
    started = time.perf_counter()
    for config in _job_configs():
        session = DebugSession(
            executor, pipeline.space, budget=InstanceBudget(BUDGET)
        )
        bugdoc = BugDoc(session=session, seed=config["seed"])
        report = bugdoc.find_all(
            Algorithm.DECISION_TREES, ddt_config=config["ddt_config"]
        )
        reports[config["job_id"]] = {
            "causes": sorted(str(cause) for cause in report.causes),
            "charged": session.budget.spent,
        }
    elapsed = time.perf_counter() - started
    return {"wall": elapsed, "executions": counting.calls, "jobs": reports}


def _run_service(pipeline):
    """The same jobs, concurrent, over one scheduler + execution cache."""
    counting = CountingExecutor(pipeline.oracle)
    executor = LatencyExecutor(counting, LATENCY_SECONDS)
    specs = [
        JobSpec(
            job_id=config["job_id"],
            executor=executor,
            space=pipeline.space,
            workflow="service-throughput",
            algorithm=Algorithm.DECISION_TREES,
            goal=JobGoal.FIND_ALL,
            budget=BUDGET,
            seed=config["seed"],
            ddt_config=config["ddt_config"],
        )
        for config in _job_configs()
    ]
    started = time.perf_counter()
    with DebugService(workers=WORKERS) as service:
        results = service.run_all(specs, timeout=600)
        elapsed = time.perf_counter() - started
        cache_stats = service.cache.stats.snapshot()
    reports = {
        result.job_id: {
            "causes": sorted(str(cause) for cause in result.report.causes),
            "charged": result.budget_spent,
        }
        for result in results
    }
    return {
        "wall": elapsed,
        "executions": counting.calls,
        "jobs": reports,
        "cache": cache_stats,
    }


def _compare():
    pipeline = _make_pipeline()
    serial = _run_serial(pipeline)
    service = _run_service(pipeline)
    return serial, service


def test_service_throughput(benchmark, publish):
    serial, service = run_once(benchmark, _compare)

    total_charged = sum(job["charged"] for job in serial["jobs"].values())
    rows = [
        [
            "serial (no sharing)",
            f"{serial['wall']:.2f}s",
            str(serial["executions"]),
            str(total_charged),
            "--",
        ],
        [
            f"service ({WORKERS} workers)",
            f"{service['wall']:.2f}s",
            str(service["executions"]),
            str(sum(job["charged"] for job in service["jobs"].values())),
            f"{service['cache']['hit_rate']:.0%}",
        ],
    ]
    text = format_table(
        ["arm", "wall", "pipeline executions", "charged to budgets", "cache hit rate"],
        rows,
        title=(
            f"Service throughput: {len(JOB_SEEDS)} concurrent jobs, "
            f"instance latency {LATENCY_SECONDS * 1000:.0f} ms"
        ),
    )
    speedup = serial["wall"] / service["wall"]
    saved = serial["executions"] - service["executions"]
    text += (
        f"\n\nspeedup: {speedup:.2f}x   "
        f"executions saved by cross-job cache: {saved} "
        f"({saved / serial['executions']:.0%})"
    )
    publish("service_throughput", text)

    # Correctness: every job's causes and budget charge are identical to
    # its standalone serial run.
    for job_id, baseline in serial["jobs"].items():
        assert service["jobs"][job_id]["causes"] == baseline["causes"]
        assert service["jobs"][job_id]["charged"] == baseline["charged"]

    # Efficiency: sharing must measurably reduce real pipeline
    # executions (seed pairs fully overlap) and wall-clock time.
    assert service["executions"] < serial["executions"]
    assert service["executions"] <= serial["executions"] * 0.75
    assert service["wall"] < serial["wall"]
    assert speedup > 1.5, f"service speedup only {speedup:.2f}x"
