"""Ablation benches for the design choices called out in DESIGN.md.

Not a paper figure -- these quantify the starred implementation
decisions so a downstream user can see what each buys:

* A1 disjoint-pair selection: max-Hamming fallback vs first success;
* A2 Quine-McCluskey simplification on/off (explanation size);
* A3 suspect ordering: shortest-first vs shuffled;
* A4 confirmed-suspect minimization on/off (cause length);
* A5 complement exploration on/off (FindAll recall).
"""

from __future__ import annotations

import random

from repro.core import (
    DDTConfig,
    DebugSession,
    debugging_decision_trees,
    shortcut,
)
from repro.eval import format_table, match_synthetic, score_find_all
from repro.synth import Scenario, make_suite

from conftest import run_once

SUITE_KW = dict(min_parameters=3, max_parameters=6, min_values=5, max_values=8)


def _session_for(pipeline, seed, size=8):
    rng = random.Random(seed)
    history = pipeline.initial_history(rng, size=size)
    return DebugSession(pipeline.oracle, pipeline.space, history=history)


def _ddt_score(suite, config_factory):
    reports = []
    budgets = []
    lengths = []
    counts = []
    for index, pipeline in enumerate(suite):
        session = _session_for(pipeline, seed=index)
        result = debugging_decision_trees(session, config_factory(index))
        budgets.append(result.instances_executed)
        for cause in result.causes:
            lengths.append(len(cause))
        counts.append(len(result.causes))
        reports.append(
            match_synthetic(
                result.causes,
                pipeline.true_causes,
                pipeline.space,
                pipeline.oracle,
                seed=index,
            )
        )
    prf = score_find_all(reports)
    mean_budget = sum(budgets) / len(budgets)
    mean_length = sum(lengths) / len(lengths) if lengths else 0.0
    return prf, mean_budget, mean_length


def _ablation_rows():
    suite = make_suite(Scenario.DISJUNCTION, 8, seed=701, **SUITE_KW)
    rows = []

    variants = {
        "baseline (all on)": lambda i: DDTConfig(find_all=True, seed=i),
        "A2 simplify off": lambda i: DDTConfig(find_all=True, simplify=False, seed=i),
        "A3 unordered suspects": lambda i: DDTConfig(
            find_all=True, shortest_first=False, seed=i
        ),
        "A4 no minimization": lambda i: DDTConfig(
            find_all=True, minimize_confirmed=False, seed=i
        ),
        "A5 no exploration": lambda i: DDTConfig(
            find_all=True, exploration_per_round=0, seed=i
        ),
    }
    for label, factory in variants.items():
        prf, budget, length = _ddt_score(suite, factory)
        rows.append(
            [
                label,
                f"{prf.precision:.3f}",
                f"{prf.recall:.3f}",
                f"{prf.f_measure:.3f}",
                f"{budget:.1f}",
                f"{length:.2f}",
            ]
        )
    return rows


def _shortcut_pairing_rows():
    suite = make_suite(Scenario.CONJUNCTION, 10, seed=702, **SUITE_KW)
    rows = []
    for label, pick_best in (("A1 max-Hamming good instance", True), ("A1 first success", False)):
        asserted_ok = 0
        total = 0
        for index, pipeline in enumerate(suite):
            session = _session_for(pipeline, seed=index)
            history = session.history
            failing = history.failures[0]
            disjoint = history.disjoint_successes(failing)
            if disjoint:
                good = disjoint[0]
            elif pick_best:
                good = history.most_different_success(failing)
            else:
                good = history.successes[0]
            if good is None:
                continue
            result = shortcut(session, failing, good)
            total += 1
            report = match_synthetic(
                [result.cause] if result.asserted else [],
                pipeline.true_causes,
                pipeline.space,
                pipeline.oracle,
                seed=index,
            )
            if report.found_at_least_one:
                asserted_ok += 1
        rows.append([label, f"{asserted_ok}/{total}", "", "", "", ""])
    return rows


def test_ablations(benchmark, publish):
    rows = run_once(benchmark, lambda: _ablation_rows() + _shortcut_pairing_rows())
    text = format_table(
        ["variant", "precision", "recall", "F", "mean budget", "mean |cause|"],
        rows,
        title="Ablations: DDT design choices (FindAll, disjunction suite) "
        "and Shortcut pairing heuristic (hit rate)",
    )
    publish("ablations", text)
    assert rows, "ablation table must not be empty"
