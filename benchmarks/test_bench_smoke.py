"""Benchmark rot protection: import every bench module, run the quick gates.

Benchmarks are plain scripts, so nothing in the tier-1 suite touches
them and an API refactor can silently break a figure regeneration
months before anyone re-runs it.  This module closes that gap in two
layers:

* every ``bench_*.py`` file must still *import* (catches renamed or
  removed APIs at collection cost only), and
* every script-style benchmark exposing ``main`` with a ``--quick``
  mode must still run it successfully (the same gates CI runs, so the
  gates themselves cannot rot either).

The tests are marked ``bench_smoke`` and skip unless the
``REPRO_BENCH_SMOKE`` environment variable is set: the quick runs take
minutes, so CI runs them as a separate non-blocking, time-boxed step
(see ``.github/workflows/ci.yml``) instead of inside tier-1.
"""

from __future__ import annotations

import importlib.util
import os
import pathlib
import sys

import pytest

pytestmark = pytest.mark.bench_smoke

BENCH_DIR = pathlib.Path(__file__).parent
BENCH_FILES = sorted(path.stem for path in BENCH_DIR.glob("bench_*.py"))


def _require_opt_in():
    if not os.environ.get("REPRO_BENCH_SMOKE"):
        pytest.skip("set REPRO_BENCH_SMOKE=1 to run benchmark smoke tests")


def _load(name: str):
    """Import a benchmark module from its file (benchmarks/ is not a
    package, so spec-based loading keeps sys.path untouched)."""
    loaded = sys.modules.get(name)
    if loaded is not None:
        return loaded
    spec = importlib.util.spec_from_file_location(
        name, BENCH_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def _quick_benchmarks() -> list[str]:
    """Script-style benchmarks advertising a --quick mode."""
    names = []
    for name in BENCH_FILES:
        source = (BENCH_DIR / f"{name}.py").read_text(encoding="utf-8")
        if "--quick" in source and "def main(" in source:
            names.append(name)
    return names


def test_quick_benchmarks_discovered():
    """The quick-gate roster must never silently shrink to nothing."""
    _require_opt_in()
    assert set(_quick_benchmarks()) >= {
        "bench_engine_overhead",
        "bench_strategy_overhead",
        "bench_batch_suspects",
        "bench_columnar_shards",
        "bench_process_backend",
        "bench_event_overhead",
        "bench_remote_fleet",
        "bench_http_service",
        "bench_telemetry_retention",
    }


@pytest.mark.parametrize("name", BENCH_FILES)
def test_bench_module_imports(name):
    _require_opt_in()
    _load(name)


@pytest.mark.parametrize("name", _quick_benchmarks())
def test_quick_mode_passes(name):
    _require_opt_in()
    module = _load(name)
    assert module.main(["--quick"]) == 0, f"{name} --quick gate failed"
