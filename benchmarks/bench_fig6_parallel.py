"""Figure 6: scalability of Debugging Decision Trees across workers.

The paper re-runs the synthetic FindAll experiment on 1-8 cores and
observes essentially linear scale-up.  Here each pipeline instance
carries simulated latency (standing in for the 20-minute / 10-hour real
runs, see DESIGN.md) and the parallel dispatcher fans suspect-variation
batches across a worker pool.

Expected shape: wall-clock time decreases monotonically (near-linearly)
with workers while the answer stays the same; speculative execution may
run a few extra instances -- the "small overhead" of Section 4.3.
"""

from __future__ import annotations

import random
import time

from repro.core import DDTConfig, debugging_decision_trees
from repro.eval import render_series
from repro.pipeline import LatencyExecutor, ParallelDebugSession
from repro.synth import SyntheticConfig, generate_pipeline

from conftest import run_once

WORKER_COUNTS = (1, 2, 4, 8)
LATENCY_SECONDS = 0.01


def _make_pipeline():
    config = SyntheticConfig(
        min_parameters=5,
        max_parameters=5,
        min_values=5,
        max_values=6,
        cause_arities=(1, 2),
    )
    return generate_pipeline("fig6", config=config, seed=600)


def _run_with_workers(pipeline, workers):
    rng = random.Random(0)
    history = pipeline.initial_history(rng, size=8)
    executor = LatencyExecutor(pipeline.oracle, LATENCY_SECONDS)
    session = ParallelDebugSession(
        executor, pipeline.space, history=history, workers=workers
    )
    started = time.perf_counter()
    result = debugging_decision_trees(
        session, DDTConfig(find_all=True, tests_per_suspect=24, seed=0)
    )
    elapsed = time.perf_counter() - started
    return elapsed, result, session


def _sweep():
    pipeline = _make_pipeline()
    rows = []
    causes_by_workers = {}
    for workers in WORKER_COUNTS:
        elapsed, result, session = _run_with_workers(pipeline, workers)
        rows.append(
            {
                "workers": workers,
                "wall_seconds": elapsed,
                "instances": session.new_executions,
                "causes": sorted(str(c) for c in result.causes),
            }
        )
        causes_by_workers[workers] = set(str(c) for c in result.causes)
    return rows, causes_by_workers


def test_fig6_parallel_scaleup(benchmark, publish):
    rows, causes_by_workers = run_once(benchmark, _sweep)
    baseline = rows[0]["wall_seconds"]
    text = render_series(
        "Figure 6: DDT FindAll scale-up with worker count "
        f"(simulated instance latency {LATENCY_SECONDS * 1000:.0f} ms)",
        "workers",
        [row["workers"] for row in rows],
        {
            "wall seconds": [row["wall_seconds"] for row in rows],
            "speedup": [baseline / row["wall_seconds"] for row in rows],
            "instances executed": [float(row["instances"]) for row in rows],
        },
        fmt=lambda v: f"{v:.2f}",
    )
    publish("fig6_parallel", text)

    # Shape: more workers never slower by more than noise; 8 workers
    # meaningfully faster than 1.
    assert rows[-1]["wall_seconds"] < baseline
    speedup = baseline / rows[-1]["wall_seconds"]
    assert speedup > 1.5, f"8-worker speedup only {speedup:.2f}x"
