"""Section 5.3 (DBSherlock): holdout accuracy of root-cause classifiers.

"We split the dataset into three parts: 50% for training, 25% budget,
25% holdout ... if the pipeline instance is a superset of a minimal
root cause, we predict failure.  This method is accurate 98% of the
time."  This benchmark repeats that experiment for several anomaly
classes and reports mean holdout accuracy.
"""

from __future__ import annotations

from repro.core import Algorithm, BugDoc, DDTConfig
from repro.eval import format_table
from repro.workloads import dbsherlock

from conftest import run_once

ANOMALIES = (
    "cpu_saturation",
    "io_saturation",
    "workload_spike",
    "lock_contention",
    "network_congestion",
)


def _accuracy_for(anomaly: str, seed: int):
    case = dbsherlock.build_case(anomaly, seed=seed)
    session = case.make_session(budget=len(case.budget_pool.instances))
    bugdoc = BugDoc(session=session, seed=seed)
    report = bugdoc.find_all(
        Algorithm.DECISION_TREES,
        ddt_config=DDTConfig(find_all=True, tests_per_suspect=40, seed=seed),
    )
    accuracy = dbsherlock.superset_classifier_accuracy(report.causes, case.holdout)
    return accuracy, len(report.causes), report.instances_executed


def _experiment():
    rows = []
    for index, anomaly in enumerate(ANOMALIES):
        accuracy, n_causes, budget = _accuracy_for(anomaly, seed=20 + index)
        rows.append((anomaly, accuracy, n_causes, budget))
    return rows


def test_dbsherlock_holdout_accuracy(benchmark, publish):
    rows = run_once(benchmark, _experiment)
    mean_accuracy = sum(row[1] for row in rows) / len(rows)
    text = format_table(
        ["anomaly class", "holdout accuracy", "#causes", "instances read"],
        [
            [anomaly, f"{accuracy:.3f}", n_causes, budget]
            for anomaly, accuracy, n_causes, budget in rows
        ]
        + [["MEAN", f"{mean_accuracy:.3f}", "", ""]],
        title=(
            "DBSherlock holdout experiment: predict failure when an "
            "instance is a superset of an asserted minimal root cause "
            "(paper: 98% accuracy)"
        ),
    )
    publish("dbsherlock_accuracy", text)
    assert mean_accuracy >= 0.9, f"mean holdout accuracy {mean_accuracy:.3f}"
