"""Figure 3: FindAll precision / recall / F-measure (disjunction causes).

Expected shape (paper): recall drops relative to FindOne (a single
cause is no longer sufficient); Data X-Ray's non-minimal eagerness pays
off in recall; Debugging Decision Trees offers the best
precision/recall trade-off (F-measure).
"""

from __future__ import annotations

from repro.eval import BudgetGroup, Method, render_prf_figure, run_suite
from repro.synth import Scenario, make_suite

from conftest import run_once

N_PIPELINES = 8


def _figure():
    suite = make_suite(
        Scenario.DISJUNCTION,
        N_PIPELINES,
        seed=301,
        min_parameters=3,
        max_parameters=6,
        min_values=5,
        max_values=9,
    )
    return run_suite(suite, find_all=True, seed=301)


def test_fig3_findall(benchmark, publish):
    result = run_once(benchmark, _figure)
    sections = [
        render_prf_figure(
            result, metric, f"Figure 3 FindAll {label} -- disjunction causes"
        )
        for metric, label in (
            ("precision", "Precision (3a)"),
            ("recall", "Recall (3b)"),
            ("f_measure", "F-measure (3c)"),
        )
    ]
    publish("fig3_findall", "\n\n".join(sections))

    ddt = BudgetGroup.DDT
    bugdoc = result.prf(Method.BUGDOC, ddt)
    # DDT's trade-off claim: best F-measure among all methods at its budget.
    for method in Method:
        assert bugdoc.f_measure >= result.prf(method, ddt).f_measure - 1e-9
