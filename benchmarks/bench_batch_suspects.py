"""Batch suspect evaluation: one-pass screening vs one-at-a-time (PR 3).

PR 2/3 made single-conjunction queries bitset-fast, but the DDT
confirmation loop still consulted the history one conjunction at a
time: per-suspect subsumption filtering against every confirmed cause,
per-candidate refutation checks during minimization, per-call
recompilation of parameter masks, and hydration that re-decoded and
re-encoded every provenance row.  PR 4's batch evaluation layer
(`StrategyContext(batch=True)`, the default) runs those hypothesis
*sets* in single store passes with shared per-literal match tables,
memoized subsumption grids, and schema-v3 encoded-row hydration.

This benchmark drives the **confirmation-heavy sweep** those changes
target: a provenance-rich SQLite store seeded with dense failing
coverage of every planted cause (24 causes of arity 3) plus a broad
random background, so DDT FindAll
spends its time confirming and minimizing suspects against a large,
growing confirmed set rather than rebuilding trees after refutations.
Each cell runs twice over the same database:

* ``batch``    -- schema-v3 hydration (instances + columnar store
                  rebuilt from stored codes) and the batch layer on;
* ``one-at-a-time`` -- PR 3's exact code paths: hydrate by decoding
                  bindings and re-encoding, scalar screening loops
                  (``StrategyContext(batch=False)`` preserves them
                  bit for bit).

Both must produce **identical** report fingerprints, instance counts,
and budgets; the run aborts otherwise.  Solver time is hydration +
search minus the cached executor's wall clock.  Exit status is non-zero
when batch is not faster overall, or (full mode) when the speedup at
12+ parameters falls below the 2x acceptance bar.

Usage:
    PYTHONPATH=src python benchmarks/bench_batch_suspects.py [--quick]
"""

from __future__ import annotations

import argparse
import os
import pathlib
import random
import sys
import tempfile
import time

from repro.core import (
    DDTConfig,
    DebugSession,
    ExecutionHistory,
    Instance,
    StrategyContext,
)
from repro.core.ddt import debugging_decision_trees
from repro.provenance import ProvenanceRecord, SQLiteProvenanceStore
from repro.synth import SyntheticConfig, generate_pipeline

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

FULL_CELLS = ((7, 800), (9, 1200), (11, 1600), (13, 2000))
QUICK_CELLS = ((7, 400), (11, 800))
SEEDS_FULL = (0, 1, 2)
SEEDS_QUICK = (0,)
CAUSE_ARITIES = (3,) * 24
PER_CAUSE_ROWS = 50
MAX_ROUNDS = 120
REQUIRED_SPEEDUP_AT_MAX = 2.0


class CachedTimedExecutor:
    """Memoizing executor that accounts its own wall-clock time."""

    def __init__(self, oracle):
        self._oracle = oracle
        self._cache = {}
        self.seconds = 0.0
        self.calls = 0

    def __call__(self, instance):
        started = time.perf_counter()
        self.calls += 1
        outcome = self._cache.get(instance)
        if outcome is None:
            outcome = self._oracle(instance)
            self._cache[instance] = outcome
        self.seconds += time.perf_counter() - started
        return outcome


def _pipeline_for(n_params: int, seed: int):
    config = SyntheticConfig(
        min_parameters=n_params,
        max_parameters=n_params,
        min_values=5,
        max_values=7,
        cause_arities=CAUSE_ARITIES,
        verify_minimality_up_to=0,  # sizes are large by design
    )
    return generate_pipeline(
        f"batch-suspects-{n_params}", config=config, seed=1400 + seed
    )


def _confirmation_rich_history(pipeline, rng, per_cause, n_random):
    """Dense failing coverage of every planted cause + broad background.

    This is the regime the batch layer targets: the seeded evidence
    pins each cause well enough that tree suspects mostly *confirm*,
    so solver time concentrates in suspect screening, minimization,
    and confirmed-set maintenance rather than refutation rebuilds.
    """
    history = ExecutionHistory()
    space = pipeline.space

    def add(instance):
        if instance not in history:
            history.record(instance, pipeline.oracle(instance))

    for cause in pipeline.true_causes:
        sets = cause.canonical(space)
        for __ in range(per_cause):
            values = {}
            for name in space.names:
                allowed = sets.get(name)
                if allowed is None:
                    values[name] = rng.choice(space.domain(name))
                else:
                    values[name] = rng.choice(sorted(allowed, key=repr))
            add(Instance(values))
    for __ in range(n_random):
        add(space.random_instance(rng))
    return history


def _build_database(path, pipeline, history):
    """Seed the provenance store and warm the schema-v3 encoded rows."""
    store = SQLiteProvenanceStore(path)
    for evaluation in history:
        store.add(
            ProvenanceRecord("wf", evaluation.instance, evaluation.outcome)
        )
    store.save_space(pipeline.space)
    store.hydrate("wf", pipeline.space)  # cold pass persists encoded rows
    store.close()


def run_cell(path, pipeline, batch: bool):
    """One hydrate + DDT FindAll run; returns (solver_seconds, fingerprint)."""
    store = SQLiteProvenanceStore(path)
    executor = CachedTimedExecutor(pipeline.oracle)
    started = time.perf_counter()
    if batch:
        space, history = store.hydrate("wf", pipeline.space)
    else:
        # PR 3 hydration: decode every binding, then sync-by-encoding.
        key = store.save_space(pipeline.space)
        space = store.load_space(key)
        history = store.to_history("wf")
        history.columnar_store(space)
    session = DebugSession(executor, space, history=history)
    context = StrategyContext(session, batch=batch)
    result = debugging_decision_trees(
        session,
        DDTConfig(
            find_all=True, batch_suspects=batch, max_rounds=MAX_ROUNDS
        ),
        context=context,
    )
    wall = time.perf_counter() - started
    store.close()
    if batch and context.fallback_count:
        raise SystemExit(
            f"SILENT FALLBACKS: {context.fallback_count} engine queries "
            "fell back to the reference path on a compilable workload"
        )
    fingerprint = (
        tuple(str(c) for c in result.causes),
        str(result.explanation),
        result.instances_executed,
        result.budget_exhausted,
        result.rounds,
        tuple(result.tree_sizes),
        session.budget.spent,
        len(session.history),
    )
    return wall - executor.seconds, fingerprint


def sweep(cells, seeds):
    rows = []
    for n_params, n_random in cells:
        batch_total = scalar_total = 0.0
        causes = rounds = 0
        for seed in seeds:
            pipeline = _pipeline_for(n_params, seed)
            rng = random.Random(seed)
            history = _confirmation_rich_history(
                pipeline, rng, PER_CAUSE_ROWS, n_random
            )
            with tempfile.TemporaryDirectory() as tmp:
                path = os.path.join(tmp, "provenance.db")
                _build_database(path, pipeline, history)
                batch_time, batch_fp = run_cell(path, pipeline, batch=True)
                scalar_time, scalar_fp = run_cell(path, pipeline, batch=False)
            if batch_fp != scalar_fp:
                raise SystemExit(
                    f"BATCH DIVERGENCE at {n_params} params, seed {seed}:\n"
                    f"  batch        : {batch_fp}\n"
                    f"  one-at-a-time: {scalar_fp}"
                )
            batch_total += batch_time
            scalar_total += scalar_time
            causes += len(batch_fp[0])
            rounds += batch_fp[4]
        n = len(seeds)
        rows.append(
            {
                "n_params": n_params,
                "history": n_random + PER_CAUSE_ROWS * len(CAUSE_ARITIES),
                "causes": causes / n,
                "rounds": rounds / n,
                "scalar_s": scalar_total / n,
                "batch_s": batch_total / n,
                "speedup": (
                    scalar_total / batch_total
                    if batch_total
                    else float("inf")
                ),
            }
        )
    return rows


def render(rows, seeds) -> str:
    lines = [
        "Batch suspect evaluation: confirmation-heavy DDT FindAll over a",
        "provenance-rich store, batch layer + schema-v3 hydration vs the",
        "PR 3 one-at-a-time paths (cached executor subtracted; identical",
        f"report fingerprints verified per run; mean of {len(seeds)} seed(s))",
        "",
        f"{'#params':>8} {'~history':>9} {'causes':>7} {'rounds':>7} "
        f"{'one-at-a-time':>14} {'batch':>10} {'speedup':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row['n_params']:>8} {row['history']:>9} {row['causes']:>7.1f} "
            f"{row['rounds']:>7.1f} {row['scalar_s']:>13.4f}s "
            f"{row['batch_s']:>9.4f}s {row['speedup']:>7.1f}x"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small sweep, one seed, no results file",
    )
    args = parser.parse_args(argv)

    cells = QUICK_CELLS if args.quick else FULL_CELLS
    seeds = SEEDS_QUICK if args.quick else SEEDS_FULL
    rows = sweep(cells, seeds)
    text = render(rows, seeds)
    print(text)

    if not args.quick:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "batch_suspects.txt").write_text(
            text + "\n", encoding="utf-8"
        )

    total_scalar = sum(row["scalar_s"] for row in rows)
    total_batch = sum(row["batch_s"] for row in rows)
    if total_batch >= total_scalar:
        print(
            f"\nFAIL: batch layer ({total_batch:.4f}s) is not faster than "
            f"the one-at-a-time path ({total_scalar:.4f}s)",
            file=sys.stderr,
        )
        return 1
    print(f"\nOverall: {total_scalar / total_batch:.1f}x less solver time")

    if not args.quick:
        for row in rows:
            if row["n_params"] >= 12 and row["speedup"] < REQUIRED_SPEEDUP_AT_MAX:
                print(
                    f"\nFAIL: speedup at {row['n_params']} parameters is "
                    f"{row['speedup']:.1f}x, below the required "
                    f"{REQUIRED_SPEEDUP_AT_MAX:.0f}x",
                    file=sys.stderr,
                )
                return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
