"""Tests for execution engines (repro.pipeline.runner): caching, latency,
failure injection, replay, and the parallel dispatcher."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import (
    Comparator,
    Conjunction,
    DDTConfig,
    DebugSession,
    ExecutionHistory,
    Instance,
    InstanceBudget,
    Outcome,
    Parameter,
    ParameterSpace,
    Predicate,
    debugging_decision_trees,
)
from repro.core.session import InstanceUnavailable
from repro.pipeline import (
    CachingExecutor,
    CountingExecutor,
    FlakyExecutor,
    LatencyExecutor,
    ParallelDebugSession,
    ReplayExecutor,
)


def _space():
    return ParameterSpace(
        [Parameter("a", (0, 1, 2, 3)), Parameter("b", ("x", "y"))]
    )


def _oracle(instance):
    return Outcome.FAIL if instance["a"] == 0 else Outcome.SUCCEED


class TestWrappers:
    def test_counting(self):
        counting = CountingExecutor(_oracle)
        counting(Instance({"a": 0, "b": "x"}))
        counting(Instance({"a": 0, "b": "x"}))
        assert counting.calls == 2

    def test_caching_executes_once(self):
        counting = CountingExecutor(_oracle)
        caching = CachingExecutor(counting)
        instance = Instance({"a": 1, "b": "x"})
        assert caching(instance) is Outcome.SUCCEED
        assert caching(instance) is Outcome.SUCCEED
        assert counting.calls == 1
        assert caching.cache_size == 1

    def test_caching_single_flight_under_contention(self):
        """Concurrent requests for one uncached instance execute once.

        Regression test: the original cache only locked the dict, so two
        racing threads both ran the (expensive) pipeline.
        """
        counting = CountingExecutor(_oracle)

        def slow(instance):
            time.sleep(0.05)
            return counting(instance)

        caching = CachingExecutor(slow)
        instance = Instance({"a": 1, "b": "x"})
        barrier = threading.Barrier(6)
        outcomes = []
        lock = threading.Lock()

        def request():
            barrier.wait()
            outcome = caching(instance)
            with lock:
                outcomes.append(outcome)

        threads = [threading.Thread(target=request) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert outcomes == [Outcome.SUCCEED] * 6
        assert counting.calls == 1
        assert caching.stats.coalesced == 5

    def test_latency(self):
        slow = LatencyExecutor(_oracle, 0.02)
        start = time.perf_counter()
        slow(Instance({"a": 0, "b": "x"}))
        assert time.perf_counter() - start >= 0.02

    def test_latency_rejects_negative(self):
        with pytest.raises(ValueError):
            LatencyExecutor(_oracle, -1.0)

    def test_flaky_raises_on_selected_calls(self):
        flaky = FlakyExecutor(_oracle, lambda call, inst: call == 2)
        flaky(Instance({"a": 0, "b": "x"}))
        with pytest.raises(RuntimeError, match="injected"):
            flaky(Instance({"a": 1, "b": "x"}))
        assert flaky(Instance({"a": 2, "b": "x"})) is Outcome.SUCCEED


class TestReplay:
    def test_serves_logged_instances(self):
        log = ExecutionHistory.from_pairs(
            [(Instance({"a": 0, "b": "x"}), Outcome.FAIL)]
        )
        replay = ReplayExecutor(log)
        assert replay(Instance({"a": 0, "b": "x"})) is Outcome.FAIL

    def test_raises_for_unlogged(self):
        replay = ReplayExecutor(ExecutionHistory())
        with pytest.raises(InstanceUnavailable):
            replay(Instance({"a": 0, "b": "x"}))
        assert replay.misses == 1

    def test_session_early_stop_via_try_evaluate(self):
        log = ExecutionHistory.from_pairs(
            [(Instance({"a": 0, "b": "x"}), Outcome.FAIL)]
        )
        session = DebugSession(ReplayExecutor(log), _space())
        assert session.try_evaluate(Instance({"a": 1, "b": "x"})) is None
        assert session.try_evaluate(Instance({"a": 0, "b": "x"})) is Outcome.FAIL


class TestParallelSession:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelDebugSession(_oracle, _space(), workers=0)

    def test_parallel_flag(self):
        assert ParallelDebugSession(_oracle, _space()).parallel is True

    def test_batch_results_match_serial(self):
        instances = [
            Instance({"a": a, "b": b}) for a in (0, 1, 2, 3) for b in ("x", "y")
        ]
        parallel = ParallelDebugSession(_oracle, _space(), workers=4)
        outcomes = parallel.evaluate_many(instances)
        serial = DebugSession(_oracle, _space())
        expected = [serial.evaluate(instance) for instance in instances]
        assert outcomes == expected

    def test_batch_is_concurrent(self):
        """8 instances at 50ms each on 4 workers must beat 8x serial."""
        barrier_hits = []
        lock = threading.Lock()

        def slow_oracle(instance):
            with lock:
                barrier_hits.append(threading.get_ident())
            time.sleep(0.05)
            return _oracle(instance)

        parallel = ParallelDebugSession(slow_oracle, _space(), workers=4)
        instances = [
            Instance({"a": a, "b": b}) for a in (0, 1, 2, 3) for b in ("x", "y")
        ]
        start = time.perf_counter()
        parallel.evaluate_many(instances)
        elapsed = time.perf_counter() - start
        assert elapsed < 8 * 0.05  # strictly better than serial
        assert len(set(barrier_hits)) > 1  # multiple worker threads used

    def test_budget_respected_under_parallelism(self):
        parallel = ParallelDebugSession(
            _oracle, _space(), budget=InstanceBudget(3), workers=4
        )
        instances = [
            Instance({"a": a, "b": b}) for a in (0, 1, 2, 3) for b in ("x", "y")
        ]
        outcomes = parallel.evaluate_many(instances)
        assert parallel.budget.spent <= 3
        assert sum(1 for o in outcomes if o is not None) <= 3

    def test_history_deduplicated_under_contention(self):
        parallel = ParallelDebugSession(_oracle, _space(), workers=4)
        instance = Instance({"a": 1, "b": "x"})
        parallel.evaluate_many([instance] * 8)
        assert parallel.history.instances == (instance,)
        # Only one execution should have been charged.
        assert parallel.budget.spent == 1

    def test_ddt_runs_on_parallel_session(self):
        cause = Conjunction([Predicate("a", Comparator.EQ, 0)])

        def oracle(instance):
            return Outcome.FAIL if cause.satisfied_by(instance) else Outcome.SUCCEED

        import random

        rng = random.Random(0)
        space = _space()
        history = ExecutionHistory()
        while len(history) < 6 or not history.failures or not history.successes:
            candidate = space.random_instance(rng)
            if candidate not in history:
                history.record(candidate, oracle(candidate))
        session = ParallelDebugSession(oracle, space, history=history, workers=4)
        result = debugging_decision_trees(session, DDTConfig(find_all=True))
        assert any(
            found.semantically_equals(cause, space) for found in result.causes
        )
