"""Tests for unpruned debugging-tree induction (repro.core.tree)."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core import (
    Comparator,
    DebuggingTree,
    Instance,
    LeafKind,
    Outcome,
    Parameter,
    ParameterKind,
    ParameterSpace,
    Predicate,
    build_tree,
)


def _samples(space, oracle, instances):
    return [(instance, oracle(instance)) for instance in instances]


class TestBuildTree:
    def test_empty_samples_gives_mixed_leaf(self, mixed_space):
        root = build_tree(mixed_space, [])
        assert root.is_leaf
        assert root.leaf_kind is LeafKind.MIXED

    def test_pure_fail_history_is_single_leaf(self, mixed_space):
        samples = [
            (Instance({"a": 0, "b": "x", "c": 0.0}), Outcome.FAIL),
            (Instance({"a": 1, "b": "y", "c": 0.5}), Outcome.FAIL),
        ]
        root = build_tree(mixed_space, samples)
        assert root.is_leaf
        assert root.leaf_kind is LeafKind.FAIL

    def test_separable_samples_grow_pure_leaves(self, mixed_space):
        def oracle(instance):
            return Outcome.FAIL if instance["b"] == "y" else Outcome.SUCCEED

        rng = random.Random(0)
        instances = list({mixed_space.random_instance(rng) for __ in range(40)})
        tree = DebuggingTree(mixed_space, _samples(mixed_space, oracle, instances))
        # Deterministic oracle + distinct instances -> all leaves pure.
        for path in tree.paths(LeafKind.MIXED):
            raise AssertionError(f"unexpected mixed leaf: {path}")

    def test_classify_routes_to_trained_outcome(self, mixed_space):
        def oracle(instance):
            return Outcome.FAIL if instance["a"] >= 3 else Outcome.SUCCEED

        rng = random.Random(1)
        instances = list({mixed_space.random_instance(rng) for __ in range(60)})
        tree = DebuggingTree(mixed_space, _samples(mixed_space, oracle, instances))
        for instance in instances:
            expected = (
                LeafKind.FAIL if oracle(instance) is Outcome.FAIL else LeafKind.SUCCEED
            )
            assert tree.classify(instance) is expected

    def test_max_depth_caps_growth(self, mixed_space):
        def oracle(instance):
            return (
                Outcome.FAIL
                if (instance["a"] + int(instance["c"] * 2)) % 2 == 0
                else Outcome.SUCCEED
            )

        rng = random.Random(2)
        instances = list({mixed_space.random_instance(rng) for __ in range(50)})
        samples = _samples(mixed_space, oracle, instances)
        deep = build_tree(mixed_space, samples)
        shallow = build_tree(mixed_space, samples, max_depth=1)
        assert shallow.size <= deep.size
        assert shallow.size <= 3


class TestPaths:
    def test_fail_paths_describe_their_leaves(self, mixed_space):
        def oracle(instance):
            return (
                Outcome.FAIL
                if instance["a"] > 2 and instance["b"] == "y"
                else Outcome.SUCCEED
            )

        rng = random.Random(3)
        instances = list({mixed_space.random_instance(rng) for __ in range(80)})
        tree = DebuggingTree(mixed_space, _samples(mixed_space, oracle, instances))
        fail_paths = tree.fail_paths()
        assert fail_paths
        # Every training failure satisfies some fail path; no training
        # success satisfies any fail path.
        for instance in instances:
            satisfied = any(p.satisfied_by(instance) for p in fail_paths)
            assert satisfied == (oracle(instance) is Outcome.FAIL)

    def test_paths_sorted_shortest_first(self, mixed_space):
        def oracle(instance):
            bad = (instance["a"] == 0) or (
                instance["b"] == "z" and instance["c"] == 1.5
            )
            return Outcome.FAIL if bad else Outcome.SUCCEED

        instances = list(mixed_space.instances())
        tree = DebuggingTree(mixed_space, _samples(mixed_space, oracle, instances))
        lengths = [len(p) for p in tree.fail_paths()]
        assert lengths == sorted(lengths)

    def test_inequality_splits_on_ordinals(self):
        space = ParameterSpace(
            [Parameter("t", tuple(range(10)), ParameterKind.ORDINAL)]
        )

        def oracle(instance):
            return Outcome.FAIL if instance["t"] > 6 else Outcome.SUCCEED

        samples = [(i, oracle(i)) for i in space.instances()]
        tree = DebuggingTree(space, samples)
        (path,) = tree.fail_paths()
        assert path.canonical(space) == {"t": frozenset({7, 8, 9})}
        # The split really is an inequality predicate.
        comparators = {p.comparator for p in path.predicates}
        assert comparators <= {Comparator.GT, Comparator.LE}


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 100_000))
def test_tree_purity_invariant_random_oracles(seed):
    """Fully-grown trees over deduplicated deterministic samples have no
    mixed leaves, and fail paths exactly cover training failures."""
    rng = random.Random(seed)
    space = ParameterSpace(
        [
            Parameter("u", (0, 1, 2, 3), ParameterKind.ORDINAL),
            Parameter("v", ("p", "q")),
        ]
    )
    law = {
        instance: rng.random() < 0.35 for instance in space.instances()
    }

    def oracle(instance):
        return Outcome.FAIL if law[instance] else Outcome.SUCCEED

    instances = list({space.random_instance(rng) for __ in range(30)})
    tree = DebuggingTree(space, [(i, oracle(i)) for i in instances])
    assert not tree.paths(LeafKind.MIXED)
    fail_paths = tree.fail_paths()
    for instance in instances:
        covered = any(p.satisfied_by(instance) for p in fail_paths)
        assert covered == (oracle(instance) is Outcome.FAIL)
