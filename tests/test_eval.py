"""Tests for the evaluation harness (repro.eval)."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    Comparator,
    Conjunction,
    Instance,
    Outcome,
    Parameter,
    ParameterKind,
    ParameterSpace,
    Predicate,
)
from repro.eval import (
    BudgetGroup,
    MatchReport,
    Method,
    PRF,
    conciseness,
    failure_coverage,
    format_table,
    match_exact,
    match_soundness,
    match_synthetic,
    render_conciseness,
    render_prf_figure,
    render_series,
    run_suite,
    score_find_all,
    score_find_one,
)
from repro.eval.ground_truth import match_synthetic  # noqa: F811 - explicit
from repro.synth import Scenario, make_suite


def _space():
    return ParameterSpace(
        [
            Parameter("a", (0, 1, 2, 3), ParameterKind.ORDINAL),
            Parameter("b", ("x", "y")),
        ]
    )


def _conj(*predicates):
    return Conjunction(predicates)


class TestMatchExact:
    def test_semantic_equality_counts(self):
        space = _space()
        truth = _conj(Predicate("a", Comparator.GT, 2))
        synonym = _conj(Predicate("a", Comparator.EQ, 3))
        report = match_exact([synonym], [truth], space)
        assert report.found_at_least_one
        assert report.matched_true == (truth,)

    def test_wrong_cause_is_false_positive(self):
        space = _space()
        truth = _conj(Predicate("a", Comparator.EQ, 0))
        wrong = _conj(Predicate("b", Comparator.EQ, "x"))
        report = match_exact([wrong], [truth], space)
        assert not report.found_at_least_one
        assert report.n_false_positives == 1


class TestMatchSynthetic:
    def test_sound_sub_cause_of_neq_counts(self):
        """p != v plants many minimal definitive equality causes."""
        space = _space()
        truth = _conj(Predicate("a", Comparator.NEQ, 0))

        def oracle(instance):
            return Outcome.FAIL if truth.satisfied_by(instance) else Outcome.SUCCEED

        asserted = _conj(Predicate("a", Comparator.EQ, 2))
        report = match_synthetic([asserted], [truth], space, oracle)
        assert report.found_at_least_one
        assert report.matched_true == (truth,)

    def test_unsound_cause_rejected(self):
        space = _space()
        truth = _conj(Predicate("a", Comparator.EQ, 0))

        def oracle(instance):
            return Outcome.FAIL if truth.satisfied_by(instance) else Outcome.SUCCEED

        overly_general = _conj(Predicate("b", Comparator.EQ, "x"))
        report = match_synthetic([overly_general], [truth], space, oracle)
        assert report.n_false_positives == 1

    def test_non_minimal_cause_rejected(self):
        space = _space()
        truth = _conj(Predicate("a", Comparator.EQ, 0))

        def oracle(instance):
            return Outcome.FAIL if truth.satisfied_by(instance) else Outcome.SUCCEED

        padded = _conj(
            Predicate("a", Comparator.EQ, 0), Predicate("b", Comparator.EQ, "x")
        )
        report = match_synthetic([padded], [truth], space, oracle)
        assert report.n_false_positives == 1

    def test_trivial_cause_rejected(self):
        space = _space()
        truth = _conj(Predicate("a", Comparator.EQ, 0))
        report = match_synthetic(
            [Conjunction()], [truth], space, lambda i: Outcome.SUCCEED
        )
        assert report.n_false_positives == 1


class TestMatchSoundness:
    def test_overlap_attribution(self):
        space = _space()
        truth = _conj(Predicate("a", Comparator.GT, 2))

        def oracle(instance):
            return Outcome.FAIL if truth.satisfied_by(instance) else Outcome.SUCCEED

        asserted = _conj(Predicate("a", Comparator.EQ, 3))
        report = match_soundness([asserted], [truth], space, oracle)
        assert report.correct_asserted == (asserted,)
        assert report.matched_true == (truth,)


class TestFailureCoverage:
    def test_coverage_fraction(self):
        cause = _conj(Predicate("a", Comparator.EQ, 0))
        failures = [
            Instance({"a": 0, "b": "x"}),
            Instance({"a": 0, "b": "y"}),
            Instance({"a": 1, "b": "x"}),
        ]
        assert failure_coverage([cause], failures) == pytest.approx(2 / 3)

    def test_empty_failures_is_full_coverage(self):
        assert failure_coverage([], []) == 1.0


class TestScoring:
    def _report(self, correct=0, incorrect=0, matched=0, n_true=1):
        dummy = _conj(Predicate("a", Comparator.EQ, 0))
        return MatchReport(
            correct_asserted=tuple([dummy] * correct),
            incorrect_asserted=tuple(
                _conj(Predicate("a", Comparator.EQ, i + 1)) for i in range(incorrect)
            ),
            matched_true=tuple([dummy] * matched),
            n_true=n_true,
        )

    def test_find_one_formulas(self):
        reports = [
            self._report(correct=1),                 # hit, no FP
            self._report(correct=0, incorrect=2),    # miss, 2 FPs
        ]
        prf = score_find_one(reports)
        assert prf.precision == pytest.approx(1 / 3)
        assert prf.recall == pytest.approx(1 / 2)

    def test_find_all_formulas(self):
        reports = [
            self._report(correct=2, incorrect=1, matched=1, n_true=2),
            self._report(correct=1, incorrect=0, matched=1, n_true=1),
        ]
        prf = score_find_all(reports)
        assert prf.precision == pytest.approx(3 / 4)
        assert prf.recall == pytest.approx(2 / 3)

    def test_f_measure(self):
        assert PRF(0.0, 0.0).f_measure == 0.0
        assert PRF(1.0, 1.0).f_measure == 1.0
        assert PRF(0.5, 1.0).f_measure == pytest.approx(2 / 3)

    def test_empty_reports(self):
        assert score_find_one([]).f_measure == 0.0
        assert score_find_all([]).f_measure == 0.0

    def test_conciseness(self):
        reports = [self._report(correct=1, incorrect=1, n_true=1)]
        stats = conciseness(reports)
        assert stats.n_causes == 2
        assert stats.parameters_per_cause == 1.0
        assert stats.log_asserted_per_actual == pytest.approx(0.30103, abs=1e-4)


class TestRunSuite:
    @pytest.fixture(scope="class")
    def result(self):
        suite = make_suite(
            Scenario.SINGLE_TRIPLE,
            2,
            seed=21,
            min_parameters=3,
            max_parameters=4,
            min_values=5,
            max_values=6,
        )
        return run_suite(suite, find_all=False, seed=21)

    def test_all_cells_populated(self, result):
        for method in Method:
            for group in BudgetGroup:
                assert len(result.reports(method, group)) == 2

    def test_budgets_recorded(self, result):
        for group in BudgetGroup:
            assert result.mean_budget(group) >= 0.0

    def test_bugdoc_dominates_f_measure(self, result):
        """The headline claim at the DDT budget group."""
        bugdoc_f = result.prf(Method.BUGDOC, BudgetGroup.DDT).f_measure
        for method in (Method.DATA_XRAY_SMAC, Method.EXPL_TABLES_SMAC):
            assert bugdoc_f >= result.prf(method, BudgetGroup.DDT).f_measure


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["x", "yy"], [["1", "2"], ["33", "4"]], title="T")
        lines = table.split("\n")
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) <= 2  # aligned widths

    def test_render_series(self):
        text = render_series(
            "Fig", "n", [1, 2], {"m": [1.0, 2.0], "k": [3.0, 4.0]}
        )
        assert "Fig" in text and "m" in text and "k" in text

    def test_render_prf_and_conciseness_smoke(self):
        suite = make_suite(
            Scenario.SINGLE_TRIPLE,
            1,
            seed=5,
            min_parameters=3,
            max_parameters=3,
            min_values=5,
            max_values=5,
        )
        result = run_suite(suite, seed=5)
        assert "BugDoc" in render_prf_figure(result, "precision", "t")
        assert "params/cause" in render_conciseness(result, "t")
