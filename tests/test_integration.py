"""Cross-module integration tests: workflow engine + provenance +
algorithms + baselines working together, failure injection, and the
parallel-vs-serial equivalence guarantees."""

from __future__ import annotations

import random

import pytest

from repro.baselines import data_xray, explanation_tables, smac_search, SMACConfig
from repro.core import (
    Algorithm,
    BugDoc,
    Comparator,
    Conjunction,
    DDTConfig,
    DebugSession,
    Instance,
    InstanceBudget,
    Outcome,
    Parameter,
    ParameterKind,
    ParameterSpace,
    Predicate,
    debugging_decision_trees,
)
from repro.pipeline import (
    FlakyExecutor,
    Module,
    ParallelDebugSession,
    Workflow,
    WorkflowExecutor,
    threshold_evaluation,
)
from repro.provenance import (
    InMemoryProvenanceStore,
    RecordingExecutor,
    SQLiteProvenanceStore,
)
from repro.synth import Scenario, make_suite


class TestWorkflowToDebugging:
    """A real workflow executed, recorded, and debugged end to end."""

    def _build(self):
        space = ParameterSpace(
            [
                Parameter("threshold", (1, 2, 3, 4), ParameterKind.ORDINAL),
                Parameter("mode", ("sum", "max")),
                Parameter("scale", (1, 10), ParameterKind.ORDINAL),
            ]
        )
        workflow = Workflow("agg", space, sink=("aggregate", "out"))
        workflow.add_module(
            Module(
                "generate",
                lambda scale: [scale * i for i in range(5)],
                parameters=("scale",),
            )
        )
        workflow.add_module(
            Module(
                "aggregate",
                lambda data, mode, threshold: (
                    sum(data) if mode == "sum" else max(data)
                )
                / threshold,
                inputs=("data",),
                parameters=("mode", "threshold"),
            )
        )
        workflow.connect("generate", "out", "aggregate", "data")
        # succeed iff result >= 5: fails for mode=max, scale=1 (4/t < 5)
        # and for sum with scale=1, threshold >= 2 (10/t < 5 for t >= 3...).
        executor = WorkflowExecutor(workflow, threshold_evaluation(5.0))
        return space, executor

    def test_debug_through_provenance_store(self, tmp_path):
        space, executor = self._build()
        store = SQLiteProvenanceStore(str(tmp_path / "prov.db"))
        recording = RecordingExecutor(executor, store, "agg")

        bugdoc = BugDoc(recording, space, seed=0)
        report = bugdoc.find_all(
            Algorithm.DECISION_TREES,
            ddt_config=DDTConfig(find_all=True, tests_per_suspect=24),
        )
        assert report.causes
        # Everything the algorithms executed is in durable provenance.
        assert len(store) == bugdoc.instances_executed
        # Asserted causes are consistent with the stored provenance.
        history = store.to_history()
        for cause in report.causes:
            assert not history.refutes(cause)

    def test_ground_truth_of_toy_workflow(self):
        """Sanity-check the toy pipeline's failure law explicitly."""
        space, executor = self._build()
        for instance in space.instances():
            data = [instance["scale"] * i for i in range(5)]
            value = (
                sum(data) if instance["mode"] == "sum" else max(data)
            ) / instance["threshold"]
            expected = Outcome.SUCCEED if value >= 5.0 else Outcome.FAIL
            assert executor(instance) is expected


class TestParallelSerialEquivalence:
    def test_same_causes_found(self):
        suite = make_suite(
            Scenario.CONJUNCTION,
            2,
            seed=31,
            min_parameters=3,
            max_parameters=4,
            min_values=5,
            max_values=6,
        )
        for pipeline in suite:
            rng = random.Random(0)
            history = pipeline.initial_history(rng, size=10)
            serial = DebugSession(
                pipeline.oracle, pipeline.space, history=history.copy()
            )
            serial_result = debugging_decision_trees(
                serial, DDTConfig(find_all=True, tests_per_suspect=16, seed=0)
            )
            parallel = ParallelDebugSession(
                pipeline.oracle, pipeline.space, history=history.copy(), workers=4
            )
            parallel_result = debugging_decision_trees(
                parallel, DDTConfig(find_all=True, tests_per_suspect=16, seed=0)
            )
            serial_causes = {str(c) for c in serial_result.causes}
            parallel_causes = {str(c) for c in parallel_result.causes}
            # Both must assert sound causes; with identical seeds and
            # deterministic oracles the cause sets agree.
            assert serial_causes == parallel_causes


class TestFailureInjection:
    def test_flaky_executor_budget_refunds_keep_accounting_exact(self):
        space = ParameterSpace([Parameter("a", tuple(range(6)))])

        def oracle(instance):
            return Outcome.FAIL if instance["a"] == 0 else Outcome.SUCCEED

        flaky = FlakyExecutor(oracle, lambda call, inst: call % 3 == 0)
        session = DebugSession(flaky, space, budget=InstanceBudget(10))
        executed = 0
        for value in range(6):
            try:
                session.evaluate(Instance({"a": value}))
                executed += 1
            except RuntimeError:
                pass
        assert session.budget.spent == executed
        assert len(session.history.instances) == executed

    def test_bugdoc_survives_transient_failures_with_retry(self):
        space = ParameterSpace(
            [Parameter("a", (0, 1, 2)), Parameter("b", (0, 1, 2))]
        )

        def oracle(instance):
            return Outcome.FAIL if instance["a"] == 0 else Outcome.SUCCEED

        flaky = FlakyExecutor(oracle, lambda call, inst: call == 4)

        def retrying(instance):
            try:
                return flaky(instance)
            except RuntimeError:
                return flaky(instance)

        bugdoc = BugDoc(retrying, space, seed=0)
        report = bugdoc.find_all(Algorithm.DECISION_TREES)
        truth = Conjunction([Predicate("a", Comparator.EQ, 0)])
        assert any(c.semantically_equals(truth, space) for c in report.causes)


class TestGeneratedInstancesFeedBaselines:
    """The paper's protocol: explanation methods consume generated logs."""

    def test_bugdoc_history_beats_smac_history_for_xray(self):
        suite = make_suite(
            Scenario.CONJUNCTION,
            3,
            seed=33,
            min_parameters=3,
            max_parameters=4,
            min_values=5,
            max_values=6,
        )
        better_or_equal = 0
        for pipeline in suite:
            rng = random.Random(1)
            initial = pipeline.initial_history(rng, size=6)

            bug_session = DebugSession(
                pipeline.oracle, pipeline.space, history=initial.copy()
            )
            BugDoc(session=bug_session, seed=1).find_one(Algorithm.DECISION_TREES)
            budget = bug_session.new_executions

            smac_session = DebugSession(
                pipeline.oracle,
                pipeline.space,
                history=initial.copy(),
                budget=InstanceBudget(max(budget, 1)),
            )
            smac_search(smac_session, SMACConfig(iterations=max(budget, 1), seed=1))

            true_cause = pipeline.true_causes[0]
            xray_bugdoc = data_xray(bug_session.history, pipeline.space)
            xray_smac = data_xray(smac_session.history, pipeline.space)

            def hit(diagnoses):
                return any(
                    true_cause.subsumes(d, pipeline.space) for d in diagnoses
                )

            if hit(xray_bugdoc.diagnoses) >= hit(xray_smac.diagnoses):
                better_or_equal += 1
        assert better_or_equal >= 2  # BugDoc instances usually more useful

    def test_explanation_tables_consumes_ddt_history(self):
        suite = make_suite(
            Scenario.SINGLE_TRIPLE,
            1,
            seed=35,
            min_parameters=3,
            max_parameters=3,
            min_values=5,
            max_values=5,
        )
        pipeline = suite[0]
        rng = random.Random(2)
        session = DebugSession(
            pipeline.oracle,
            pipeline.space,
            history=pipeline.initial_history(rng, size=6),
        )
        BugDoc(session=session, seed=2).find_all(Algorithm.DECISION_TREES)
        result = explanation_tables(session.history, pipeline.space)
        for cause in result.asserted_causes():
            assert not session.history.refutes(cause)
