"""End-to-end trace propagation: context minting, event stamping, and
causal-tree reconstruction across processes.

A trace context is minted once at the submission edge (HTTP submit or
``repro serve``), rides the JobSpec through the durable queue codec and
the scheduler into pool worker processes, and every event the job
publishes carries it.  ``QueryEngine.trace`` then rebuilds one causal
tree: the job's root span, a dispatch child span per traced pipeline
run, and a worker grandchild span stamped with the executing process's
host and pid -- even when that process is a remote fleet member.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request

import pytest

from repro.core import Instance, Outcome, Parameter, ParameterSpace
from repro.core.bugdoc import Algorithm
from repro.exec import EventBus, ExecutorSpec, ProcessPool
from repro.exec.pool import _child_trace, _worker_span
from repro.exec.synthetic import build_space
from repro.obs.query import QueryEngine
from repro.obs.trace import TraceContext, child_trace_payload
from repro.provenance import SQLiteProvenanceStore
from repro.service import (
    DebugService,
    DebugServiceHTTP,
    JobGoal,
    JobSpec,
    space_to_payload,
    spec_from_payload,
    spec_to_payload,
)

SYNTH = "repro.exec.synthetic:build_pipeline"
FAIL_WHEN = {"p0": 1, "p1": 2}
SPACE = build_space(n_params=4, domain=4)


def _synth_spec(**kwargs) -> ExecutorSpec:
    return ExecutorSpec.from_builder(SYNTH, fail_when=FAIL_WHEN, **kwargs)


class TestTraceContext:
    def test_new_and_child_link_ids(self):
        root = TraceContext.new()
        assert len(root.trace_id) == 32 and len(root.span_id) == 16
        assert root.parent_id is None
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_payload_round_trip(self):
        root = TraceContext.new()
        assert TraceContext.from_payload(root.to_payload()) == root
        child = root.child()
        payload = child.to_payload()
        assert payload["parent_id"] == root.span_id
        assert TraceContext.from_payload(payload) == child
        # The root payload omits the absent parent.
        assert "parent_id" not in root.to_payload()

    def test_from_payload_rejects_junk(self):
        assert TraceContext.from_payload(None) is None
        assert TraceContext.from_payload({}) is None
        assert TraceContext.from_payload({"trace_id": 7, "span_id": "x"}) is None

    def test_child_trace_payload(self):
        root = TraceContext.new().to_payload()
        child = child_trace_payload(root)
        assert child["trace_id"] == root["trace_id"]
        assert child["parent_id"] == root["span_id"]
        assert child_trace_payload(None) is None
        assert child_trace_payload({"nope": 1}) is None


def _drain(bus: EventBus, job_id: str) -> list:
    bus.publish(job_id, "finished", {}, close=True)
    return [e for e in bus.events(job_id, timeout=1.0) if e.kind != "finished"]


class TestEventBusContext:
    def test_bound_context_stamps_events(self):
        bus = EventBus()
        bus.bind_context("j", {"trace_id": "t", "span_id": "s"})
        bus.publish("j", "started", {"x": 1})
        (event,) = _drain(bus, "j")
        assert event.payload["trace_id"] == "t"
        assert event.payload["span_id"] == "s"
        assert event.payload["x"] == 1

    def test_event_own_trace_fields_win(self):
        # A child-span event (e.g. run_completed carrying the worker's
        # span) must not be overwritten by the job's root context.
        bus = EventBus()
        bus.bind_context("j", {"trace_id": "t", "span_id": "root"})
        bus.publish("j", "run_completed", {"span_id": "worker"})
        (event,) = _drain(bus, "j")
        assert event.payload["span_id"] == "worker"
        assert event.payload["trace_id"] == "t"

    def test_unbind_and_discard(self):
        bus = EventBus()
        bus.bind_context("j", {"trace_id": "t", "span_id": "s"})
        bus.bind_context("j", None)
        bus.publish("j", "started", {})
        (event,) = _drain(bus, "j")
        assert "trace_id" not in event.payload
        bus.bind_context("j", {"trace_id": "t", "span_id": "s"})
        bus.discard("j")
        assert bus.bound_context("j") is None


class TestCodecRoundTrip:
    def _spec(self, trace) -> JobSpec:
        executor_spec = _synth_spec()
        return JobSpec(
            job_id="codec",
            executor=executor_spec.build(),
            executor_spec=executor_spec,
            space=SPACE,
            workflow="wf",
            goal=JobGoal.FIND_ONE,
            budget=8,
            trace=trace,
        )

    def test_trace_survives_the_queue_codec(self):
        trace = TraceContext.new().to_payload()
        payload = spec_to_payload(self._spec(trace))
        assert payload["trace"] == trace
        rebuilt = spec_from_payload(json.loads(json.dumps(payload)))
        assert rebuilt.trace == trace

    def test_untraced_and_junk_trace_stay_none(self):
        payload = spec_to_payload(self._spec(None))
        assert payload["trace"] is None
        assert spec_from_payload(payload).trace is None
        payload["trace"] = "not-a-dict"
        assert spec_from_payload(payload).trace is None


class TestPoolSpans:
    def test_child_trace_and_worker_span_helpers(self):
        trace = {"trace_id": "t" * 32, "span_id": "s" * 16}
        child = _child_trace(trace)
        assert child["trace_id"] == trace["trace_id"]
        assert child["parent_id"] == trace["span_id"]
        assert _child_trace(None) is None
        assert _child_trace({"span_id": "orphan"}) is None
        span = _worker_span(trace)
        assert span["pid"] == os.getpid()
        assert span["trace"]["parent_id"] == trace["span_id"]
        assert _worker_span(None) is None

    def test_run_traced_returns_worker_span(self):
        spec = _synth_spec()
        instance = Instance({"p0": 1, "p1": 2, "p2": 3, "p3": 3})
        with ProcessPool(max_workers=1) as pool:
            outcome, cost, from_store, span = pool.run_traced(
                spec, "wf", instance,
                trace={"trace_id": "t" * 32, "span_id": "s" * 16},
            )
            assert outcome is Outcome.FAIL
            assert span["trace"]["trace_id"] == "t" * 32
            assert span["trace"]["parent_id"] == "s" * 16
            assert span["pid"] != os.getpid()  # minted in the worker
            # Untraced runs carry no span and pay no stamping cost.
            outcome, cost, from_store, span = pool.run_traced(
                spec, "wf", instance
            )
            assert outcome is Outcome.FAIL and span is None


def _wait_terminal(handle, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if handle.status.terminal:
            return handle.status
        time.sleep(0.05)
    raise AssertionError("job never reached a terminal state")


class TestServiceCausalTree:
    def test_process_backend_builds_three_level_tree(self, tmp_path):
        store = SQLiteProvenanceStore(tmp_path / "trace.db")
        trace = TraceContext.new().to_payload()
        executor_spec = _synth_spec()
        spec = JobSpec(
            job_id="traced",
            executor=executor_spec.build(),
            executor_spec=executor_spec,
            space=SPACE,
            workflow="wf",
            algorithm=Algorithm.DECISION_TREES,
            goal=JobGoal.FIND_ONE,
            budget=10,
            trace=trace,
        )
        pool = ProcessPool(max_workers=1)
        service = DebugService(workers=2, store=store, pool=pool)
        try:
            handle = service.submit(spec)
            _wait_terminal(handle)
            service.events.flush(timeout=10.0)
            tree = QueryEngine(store).trace(trace["trace_id"])
        finally:
            service.shutdown()
            pool.shutdown()
            store.close()
        assert tree["events"] > 0
        (root,) = tree["tree"]
        assert root["span_id"] == trace["span_id"]
        kinds = {e["kind"] for e in root["events"]}
        assert {"submitted", "started"} <= kinds
        assert root["children"], "no dispatch spans under the root"
        dispatch = root["children"][0]
        assert {e["kind"] for e in dispatch["events"]} == {"run_dispatched"}
        assert dispatch["children"], "no worker span under the dispatch"
        worker = dispatch["children"][0]
        assert {e["kind"] for e in worker["events"]} == {"run_completed"}
        assert worker["pid"] != os.getpid()
        assert "host" in worker

    def test_untraced_job_publishes_no_trace_fields(self, tmp_path):
        store = SQLiteProvenanceStore(tmp_path / "untraced.db")
        executor_spec = _synth_spec()
        spec = JobSpec(
            job_id="plain",
            executor=executor_spec.build(),
            executor_spec=executor_spec,
            space=SPACE,
            workflow="wf",
            algorithm=Algorithm.DECISION_TREES,
            goal=JobGoal.FIND_ONE,
            budget=10,
        )
        pool = ProcessPool(max_workers=1)
        service = DebugService(workers=2, store=store, pool=pool)
        try:
            handle = service.submit(spec)
            _wait_terminal(handle)
            service.events.flush(timeout=10.0)
            rows = store.job_event_rows("plain")
        finally:
            service.shutdown()
            pool.shutdown()
            store.close()
        assert rows
        for row in rows:
            payload = row.get("payload") or {}
            assert "trace_id" not in payload
            assert row["kind"] not in ("run_dispatched", "run_completed")


def _space() -> ParameterSpace:
    return ParameterSpace(
        [Parameter("a", (0, 1, 2, 3)), Parameter("b", ("x", "y"))]
    )


def _oracle(instance: Instance) -> Outcome:
    return Outcome.FAIL if instance["a"] == 0 else Outcome.SUCCEED


def make_trace_oracle():
    """Importable executor builder (resolved via this test module)."""
    return _oracle


class TestHTTPTraceMint:
    @pytest.fixture()
    def api(self, tmp_path):
        store = SQLiteProvenanceStore(tmp_path / "http-trace.db")
        service = DebugService(workers=2, store=store)
        api = DebugServiceHTTP(service, store=store)
        api.start()
        yield api
        api.shutdown()
        service.shutdown()
        store.close()

    def _payload(self, job_id: str, **extra) -> dict:
        payload = {
            "job_id": job_id,
            "workflow": "http",
            "algorithm": "decision_trees",
            "goal": "find_all",
            "budget": 20,
            "executor_spec": ExecutorSpec.from_builder(
                "test_trace:make_trace_oracle"
            ).to_wire(),
            "space": space_to_payload(_space()),
        }
        payload.update(extra)
        return payload

    def _post(self, port: int, payload: dict) -> dict:
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/jobs",
            data=json.dumps(payload).encode(),
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.status == 201
            return json.loads(response.read())

    def _get(self, port: int, path: str):
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=30
        ) as response:
            return json.loads(response.read())

    def test_submit_mints_trace_and_query_rebuilds_it(self, api):
        accepted = self._post(api.port, self._payload("t1"))
        trace_id = accepted["trace_id"]
        assert isinstance(trace_id, str) and len(trace_id) == 32
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if self._get(api.port, "/jobs/t1")["status"] in (
                "succeeded", "failed", "cancelled"
            ):
                break
            time.sleep(0.1)
        tree = self._get(api.port, f"/query?op=trace&trace_id={trace_id}")
        assert tree["trace_id"] == trace_id
        assert tree["events"] > 0
        (root,) = tree["tree"]
        assert any(e["kind"] == "submitted" for e in root["events"])
        assert all(e["job_id"] == "t1" for e in root["events"])

    def test_caller_supplied_trace_joins_existing(self, api):
        mine = TraceContext.new().to_payload()
        accepted = self._post(
            api.port, self._payload("t2", trace=mine)
        )
        assert accepted["trace_id"] == mine["trace_id"]

    def test_trace_query_requires_id(self, api):
        try:
            self._get(api.port, "/query?op=trace")
        except urllib.error.HTTPError as error:
            assert error.code == 400
        else:  # pragma: no cover
            raise AssertionError("expected HTTP 400")
