"""Tests for the Stacked Shortcut algorithm (Algorithm 2, Theorem 5)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Comparator,
    Conjunction,
    DebugSession,
    ExecutionHistory,
    Instance,
    Outcome,
    Parameter,
    ParameterSpace,
    Predicate,
    conjunction_from_assignment,
    stacked_shortcut,
)


def test_requires_a_failure():
    space = ParameterSpace([Parameter("a", (0, 1))])
    history = ExecutionHistory.from_pairs([(Instance({"a": 0}), Outcome.SUCCEED)])
    session = DebugSession(lambda i: Outcome.SUCCEED, space, history=history)
    with pytest.raises(ValueError, match="no failing instance"):
        stacked_shortcut(session)


def test_requires_a_success():
    space = ParameterSpace([Parameter("a", (0, 1))])
    history = ExecutionHistory.from_pairs([(Instance({"a": 0}), Outcome.FAIL)])
    session = DebugSession(lambda i: Outcome.FAIL, space, history=history)
    with pytest.raises(ValueError, match="no successful instance"):
        stacked_shortcut(session)


def test_invalid_stack_width():
    space = ParameterSpace([Parameter("a", (0, 1))])
    session = DebugSession(lambda i: Outcome.FAIL, space)
    with pytest.raises(ValueError, match="stack_width"):
        stacked_shortcut(session, stack_width=0)


def test_single_cause_matches_plain_shortcut(ml_space, ml_oracle, table1_history):
    session = DebugSession(ml_oracle, ml_space, history=table1_history)
    result = stacked_shortcut(session)
    assert result.cause == conjunction_from_assignment({"library_version": "2.0"})
    assert len(result.good_instances) >= 1


def test_falls_back_to_most_different_without_disjoint_success():
    """Heuristic regime: no disjoint success exists at all."""
    space = ParameterSpace([Parameter("a", (0, 1, 2)), Parameter("b", (0, 1, 2))])

    def oracle(instance):
        return Outcome.FAIL if instance["b"] == 0 else Outcome.SUCCEED

    failing = Instance({"a": 0, "b": 0})
    # Shares parameter a with the failing instance -> not disjoint.
    good = Instance({"a": 0, "b": 1})
    history = ExecutionHistory.from_pairs(
        [(failing, Outcome.FAIL), (good, Outcome.SUCCEED)]
    )
    session = DebugSession(oracle, space, history=history)
    result = stacked_shortcut(session)
    assert result.good_instances == (good,)
    assert result.asserted


class TestTheorem5:
    """k mutually disjoint successes + <= k causes -> no truncation."""

    def _two_cause_problem(self):
        space = ParameterSpace(
            [Parameter(f"p{i}", (0, 1, 2, 3)) for i in range(4)]
        )
        d1 = Conjunction(
            [
                Predicate("p0", Comparator.EQ, 0),
                Predicate("p1", Comparator.EQ, 0),
            ]
        )
        d2 = Conjunction(
            [
                Predicate("p0", Comparator.EQ, 1),
                Predicate("p2", Comparator.EQ, 0),
            ]
        )

        def oracle(instance):
            return (
                Outcome.FAIL
                if d1.satisfied_by(instance) or d2.satisfied_by(instance)
                else Outcome.SUCCEED
            )

        return space, oracle, d1, d2

    def test_stacking_avoids_example2_truncation(self):
        """Example 2's overlap truncates a single shortcut; two mutually
        disjoint good instances recover the full cause."""
        space, oracle, d1, d2 = self._two_cause_problem()
        failing = Instance({"p0": 0, "p1": 0, "p2": 0, "p3": 0})
        goods = [
            Instance({"p0": 2, "p1": 1, "p2": 1, "p3": 1}),
            Instance({"p0": 3, "p1": 2, "p2": 2, "p3": 2}),
        ]
        history = ExecutionHistory.from_pairs(
            [(failing, Outcome.FAIL)]
            + [(good, Outcome.SUCCEED) for good in goods]
        )
        session = DebugSession(oracle, space, history=history)
        result = stacked_shortcut(session, stack_width=2)
        # No truncation: the asserted cause contains all of d1 (the cause
        # inside CPf) -- it is never a *proper subset* of a minimal cause.
        assert d1.predicates <= result.cause.predicates

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_union_never_truncates_with_enough_disjoint_goods(self, seed):
        import random

        rng = random.Random(seed)
        n_params = rng.randint(3, 5)
        domain = tuple(range(6))
        space = ParameterSpace(
            [Parameter(f"p{i}", domain) for i in range(n_params)]
        )
        # One planted cause inside CPf = all-zeros.
        arity = rng.randint(1, 2)
        cause_params = rng.sample(range(n_params), arity)
        cause = Conjunction(
            [Predicate(f"p{i}", Comparator.EQ, 0) for i in cause_params]
        )

        def oracle(instance):
            return (
                Outcome.FAIL if cause.satisfied_by(instance) else Outcome.SUCCEED
            )

        failing = Instance({f"p{i}": 0 for i in range(n_params)})
        goods = [
            Instance({f"p{i}": v for i in range(n_params)}) for v in (1, 2, 3)
        ]
        history = ExecutionHistory.from_pairs(
            [(failing, Outcome.FAIL)]
            + [(good, Outcome.SUCCEED) for good in goods]
        )
        session = DebugSession(oracle, space, history=history)
        result = stacked_shortcut(session, stack_width=3)
        # With a single cause, theorem 5 says the assertion is not
        # truncated; theorem 2 says it is not a superset: equality.
        assert result.cause == cause


def test_instances_linear_in_parameters_times_stack():
    names = [f"p{i}" for i in range(10)]
    space = ParameterSpace([Parameter(n, (0, 1, 2, 3)) for n in names])

    def oracle(instance):
        return Outcome.FAIL if instance["p0"] == 0 else Outcome.SUCCEED

    failing = Instance({n: 0 for n in names})
    goods = [Instance({n: v for n in names}) for v in (1, 2, 3)]
    history = ExecutionHistory.from_pairs(
        [(failing, Outcome.FAIL)] + [(g, Outcome.SUCCEED) for g in goods]
    )
    session = DebugSession(oracle, space, history=history)
    result = stacked_shortcut(session, stack_width=3)
    assert result.instances_executed <= 3 * len(names)
