"""Tests for the BugDoc facade (repro.core.bugdoc)."""

from __future__ import annotations

import pytest

from repro.core import (
    Algorithm,
    BugDoc,
    Comparator,
    Conjunction,
    DDTConfig,
    DebugSession,
    Instance,
    InstanceBudget,
    Outcome,
    Parameter,
    ParameterSpace,
    Predicate,
    conjunction_from_assignment,
)


class TestConstruction:
    def test_session_xor_components(self, mixed_space):
        session = DebugSession(lambda i: Outcome.SUCCEED, mixed_space)
        with pytest.raises(ValueError, match="not both"):
            BugDoc(lambda i: Outcome.SUCCEED, mixed_space, session=session)
        with pytest.raises(ValueError, match="required"):
            BugDoc()

    def test_int_budget_is_wrapped(self, mixed_space):
        bugdoc = BugDoc(lambda i: Outcome.SUCCEED, mixed_space, budget=7)
        assert bugdoc.session.budget.limit == 7

    def test_budget_object_accepted(self, mixed_space):
        bugdoc = BugDoc(
            lambda i: Outcome.SUCCEED, mixed_space, budget=InstanceBudget(3)
        )
        assert bugdoc.session.budget.limit == 3


class TestSeeding:
    def test_ensure_contrasting_instances(self, mixed_space):
        def oracle(instance):
            return Outcome.FAIL if instance["a"] == 0 else Outcome.SUCCEED

        bugdoc = BugDoc(oracle, mixed_space, seed=0)
        assert bugdoc.ensure_contrasting_instances()
        assert bugdoc.history.failures and bugdoc.history.successes

    def test_all_fail_pipeline_cannot_contrast(self, mixed_space):
        bugdoc = BugDoc(lambda i: Outcome.FAIL, mixed_space, seed=0)
        assert not bugdoc.ensure_contrasting_instances(max_draws=20)


class TestFindOne:
    @pytest.mark.parametrize(
        "algorithm",
        [
            Algorithm.SHORTCUT,
            Algorithm.STACKED_SHORTCUT,
            Algorithm.DECISION_TREES,
            Algorithm.COMBINED,
        ],
    )
    def test_all_algorithms_find_the_paper_cause(
        self, algorithm, ml_space, ml_oracle, table1_history
    ):
        bugdoc = BugDoc(ml_oracle, ml_space, history=table1_history.copy())
        report = bugdoc.find_one(algorithm)
        expected = conjunction_from_assignment({"library_version": "2.0"})
        assert report.asserted
        assert any(
            c.semantically_equals(expected, ml_space) for c in report.causes
        ), [str(c) for c in report.causes]

    def test_find_one_ddt_forces_find_one_mode(self, ml_space, ml_oracle, table1_history):
        bugdoc = BugDoc(ml_oracle, ml_space, history=table1_history.copy())
        report = bugdoc.find_one(
            Algorithm.DECISION_TREES, ddt_config=DDTConfig(find_all=True)
        )
        assert len(report.causes) <= 1 or report.causes


class TestFindAll:
    def test_shortcut_rejected_for_find_all(self, mixed_space):
        bugdoc = BugDoc(lambda i: Outcome.SUCCEED, mixed_space)
        with pytest.raises(ValueError, match="FindOne"):
            bugdoc.find_all(Algorithm.SHORTCUT)

    def test_combined_finds_disjunction(self, mixed_space):
        causes = [
            Conjunction([Predicate("a", Comparator.EQ, 0)]),
            Conjunction([Predicate("b", Comparator.EQ, "z")]),
        ]

        def oracle(instance):
            return (
                Outcome.FAIL
                if any(c.satisfied_by(instance) for c in causes)
                else Outcome.SUCCEED
            )

        bugdoc = BugDoc(oracle, mixed_space, seed=1)
        report = bugdoc.find_all(
            Algorithm.COMBINED,
            ddt_config=DDTConfig(find_all=True, tests_per_suspect=24),
        )
        for cause in causes:
            assert any(
                found.semantically_equals(cause, mixed_space)
                for found in report.causes
            )

    def test_combined_explanation_consistent_with_history(self, mixed_space):
        def oracle(instance):
            return Outcome.FAIL if instance["a"] >= 3 else Outcome.SUCCEED

        bugdoc = BugDoc(oracle, mixed_space, seed=2)
        report = bugdoc.find_all(Algorithm.COMBINED)
        for cause in report.causes:
            assert not bugdoc.history.refutes(cause)


class TestBudgets:
    def test_budget_is_respected(self, mixed_space):
        def oracle(instance):
            return Outcome.FAIL if instance["a"] == 0 else Outcome.SUCCEED

        bugdoc = BugDoc(oracle, mixed_space, budget=5, seed=3)
        report = bugdoc.find_all(Algorithm.DECISION_TREES)
        assert bugdoc.session.budget.spent <= 5
        assert report.instances_executed <= 5

    def test_report_counts_only_new_executions(
        self, ml_space, ml_oracle, table1_history
    ):
        bugdoc = BugDoc(ml_oracle, ml_space, history=table1_history.copy())
        report = bugdoc.find_one(Algorithm.SHORTCUT)
        assert report.instances_executed == 2  # Table 2's new instances


def test_no_failure_anywhere_raises():
    space = ParameterSpace([Parameter("a", (0, 1))])
    bugdoc = BugDoc(lambda i: Outcome.SUCCEED, space, seed=0)
    with pytest.raises(ValueError, match="no failing instance"):
        bugdoc.find_one(Algorithm.SHORTCUT)
