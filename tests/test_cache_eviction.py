"""LRU eviction for the service execution cache (ROADMAP open item).

The critical property: bounding the memory tier must not break
single-flight semantics.  Eviction only removes *settled* values;
in-flight executions live in a separate table, waiters receive the
outcome from the flight itself (the entry may be evicted before they
wake), and an evicted key is an ordinary miss that concurrent callers
coalesce on again.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.types import Instance, Outcome
from repro.service.cache import ExecutionCache, SingleFlightCache


class TestSingleFlightLRU:
    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError, match="max_entries"):
            SingleFlightCache(max_entries=0)

    def test_evicts_least_recently_used(self):
        cache = SingleFlightCache(max_entries=2)
        cache.get_or_execute("a", lambda: 1)
        cache.get_or_execute("b", lambda: 2)
        cache.get_or_execute("a", lambda: 1)  # touch: "b" is now LRU
        cache.get_or_execute("c", lambda: 3)  # evicts "b"
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1
        # Evicted key re-executes (a miss, not an error).
        calls = []
        assert cache.get_or_execute("b", lambda: calls.append(1) or 20) == 20
        assert calls == [1]

    def test_unbounded_by_default(self):
        cache = SingleFlightCache()
        for i in range(500):
            cache.put(i, i)
        assert len(cache) == 500
        assert cache.stats.evictions == 0

    def test_put_applies_bound(self):
        cache = SingleFlightCache(max_entries=3)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 3
        assert cache.stats.evictions == 7

    def test_single_flight_survives_eviction_of_inflight_result(self):
        """Waiters still receive the leader's value even when churn
        evicts the freshly-inserted entry before they wake."""
        cache = SingleFlightCache(max_entries=1)
        leader_running = threading.Event()
        release_leader = threading.Event()
        executions = []

        def slow_produce():
            executions.append("leader")
            leader_running.set()
            release_leader.wait(timeout=5)
            return "value"

        results = []

        def request():
            results.append(cache.get_or_execute("hot", slow_produce))

        leader = threading.Thread(target=request)
        leader.start()
        assert leader_running.wait(timeout=5)
        waiters = [threading.Thread(target=request) for __ in range(4)]
        for w in waiters:
            w.start()
        release_leader.set()
        leader.join(timeout=5)
        for w in waiters:
            w.join(timeout=5)
        assert results == ["value"] * 5
        assert executions == ["leader"]  # exactly one inner execution
        # Now churn the one-entry cache so "hot" is evicted ...
        cache.get_or_execute("cold", lambda: "other")
        assert "hot" not in cache
        # ... and the next request coalesces on a fresh single flight.
        assert cache.get_or_execute("hot", slow_produce) == "value"
        assert executions == ["leader", "leader"]

    def test_concurrent_churn_keeps_results_correct(self):
        cache = SingleFlightCache(max_entries=4)
        errors = []

        def worker(worker_id):
            try:
                for i in range(200):
                    key = i % 16
                    value = cache.get_or_execute(key, lambda k=key: k * 10)
                    if value != key * 10:
                        errors.append((worker_id, key, value))
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append((worker_id, exc))

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert len(cache) <= 4


class TestExecutionCacheLRU:
    def test_bounded_memory_tier_still_deduplicates(self):
        executions = []

        def executor(instance: Instance) -> Outcome:
            executions.append(instance["i"])
            return Outcome.SUCCEED

        cache = ExecutionCache(max_entries=2)
        bound = cache.executor("wf", executor)
        a, b, c = (Instance({"i": i}) for i in range(3))
        assert bound(a) is Outcome.SUCCEED
        assert bound(a) is Outcome.SUCCEED  # memory hit
        assert bound(b) is Outcome.SUCCEED
        assert bound(c) is Outcome.SUCCEED  # evicts a
        assert executions == [0, 1, 2]
        assert bound(a) is Outcome.SUCCEED  # re-executed after eviction
        assert executions == [0, 1, 2, 0]
        stats = cache.stats
        assert stats.evictions >= 1
        assert stats.hits >= 1
