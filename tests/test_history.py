"""Unit tests for the execution history (repro.core.history)."""

from __future__ import annotations

import pytest

from repro.core import (
    Comparator,
    Conjunction,
    ExecutionHistory,
    Instance,
    Outcome,
    Predicate,
)


def _inst(**values) -> Instance:
    return Instance(values)


class TestAppend:
    def test_records_and_indexes(self):
        history = ExecutionHistory()
        history.record(_inst(a=1, b=2), Outcome.FAIL)
        history.record(_inst(a=2, b=3), Outcome.SUCCEED)
        assert len(history) == 2
        assert history.failures == (_inst(a=1, b=2),)
        assert history.successes == (_inst(a=2, b=3),)

    def test_duplicate_same_outcome_allowed_but_deduped(self):
        history = ExecutionHistory()
        history.record(_inst(a=1), Outcome.FAIL)
        history.record(_inst(a=1), Outcome.FAIL)
        assert len(history) == 2  # raw log keeps both
        assert history.instances == (_inst(a=1),)  # distinct view dedupes

    def test_contradictory_outcome_rejected(self):
        history = ExecutionHistory()
        history.record(_inst(a=1), Outcome.FAIL)
        with pytest.raises(ValueError, match="contradictory"):
            history.record(_inst(a=1), Outcome.SUCCEED)

    def test_outcome_of_unknown_is_none(self):
        assert ExecutionHistory().outcome_of(_inst(a=1)) is None

    def test_contains(self):
        history = ExecutionHistory.from_pairs([(_inst(a=1), Outcome.FAIL)])
        assert _inst(a=1) in history
        assert _inst(a=2) not in history


class TestUniverse:
    def test_value_universe(self):
        history = ExecutionHistory.from_pairs(
            [
                (_inst(a=1, b="x"), Outcome.FAIL),
                (_inst(a=2, b="x"), Outcome.SUCCEED),
            ]
        )
        assert history.value_universe() == {"a": {1, 2}, "b": {"x"}}

    def test_observed_space(self):
        history = ExecutionHistory.from_pairs(
            [
                (_inst(a=1, b="x"), Outcome.FAIL),
                (_inst(a=2, b="y"), Outcome.SUCCEED),
            ]
        )
        space = history.observed_space()
        assert set(space.names) == {"a", "b"}
        assert set(space.domain("a")) == {1, 2}


class TestHypothesisQueries:
    def test_supports_and_refutes(self, table1_history):
        version2 = Conjunction(
            [Predicate("library_version", Comparator.EQ, "2.0")]
        )
        version1 = Conjunction(
            [Predicate("library_version", Comparator.EQ, "1.0")]
        )
        assert table1_history.supports(version2)
        assert not table1_history.refutes(version2)
        assert table1_history.refutes(version1)
        assert not table1_history.supports(version1)

    def test_is_hypothetical_root_cause_definition_3(self, table1_history):
        version2 = Conjunction(
            [Predicate("library_version", Comparator.EQ, "2.0")]
        )
        assert table1_history.is_hypothetical_root_cause(version2)
        # Satisfied by a success -> refuted -> not hypothetical.
        iris = Conjunction([Predicate("dataset", Comparator.EQ, "iris")])
        assert not table1_history.is_hypothetical_root_cause(iris)

    def test_example_from_definition_3(self):
        """Paper's example: A>5 and B=7 with a succeeding (A=15, B=7)."""
        cause = Conjunction(
            [
                Predicate("A", Comparator.GT, 5),
                Predicate("B", Comparator.EQ, 7),
            ]
        )
        history = ExecutionHistory.from_pairs(
            [
                (_inst(A=6, B=7), Outcome.FAIL),
                (_inst(A=15, B=7), Outcome.SUCCEED),
            ]
        )
        assert not history.is_hypothetical_root_cause(cause)


class TestDisjointSelection:
    def test_disjoint_successes(self, table1_history):
        failing = table1_history.failures[0]
        disjoint = table1_history.disjoint_successes(failing)
        assert disjoint == [
            _inst(
                dataset="digits",
                estimator="decision_tree",
                library_version="1.0",
            )
        ]

    def test_most_different_success(self, table1_history):
        failing = table1_history.failures[0]
        best = table1_history.most_different_success(failing)
        assert best is not None
        assert failing.hamming_distance(best) == 3

    def test_most_different_success_empty_history(self):
        history = ExecutionHistory.from_pairs([(_inst(a=1), Outcome.FAIL)])
        assert history.most_different_success(_inst(a=1)) is None

    def test_mutually_disjoint_successes_are_mutually_disjoint(self):
        failing = _inst(a=0, b=0)
        history = ExecutionHistory.from_pairs(
            [
                (failing, Outcome.FAIL),
                (_inst(a=1, b=1), Outcome.SUCCEED),
                (_inst(a=1, b=2), Outcome.SUCCEED),  # clashes with previous on a
                (_inst(a=2, b=2), Outcome.SUCCEED),
                (_inst(a=0, b=3), Outcome.SUCCEED),  # not disjoint from failing
            ]
        )
        selected = history.mutually_disjoint_successes(failing)
        assert selected == [_inst(a=1, b=1), _inst(a=2, b=2)]
        for left in selected:
            assert failing.is_disjoint_from(left)
            for right in selected:
                if left is not right:
                    assert left.is_disjoint_from(right)

    def test_mutually_disjoint_limit(self):
        failing = _inst(a=0, b=0)
        history = ExecutionHistory.from_pairs(
            [(failing, Outcome.FAIL)]
            + [(_inst(a=i, b=1), Outcome.SUCCEED) for i in range(1, 6)]
        )
        # Every success is disjoint from failing, but they all share b=1,
        # so the greedy mutually disjoint set has size 1.
        assert len(history.mutually_disjoint_successes(failing, limit=4)) == 1

    def test_mutually_disjoint_respects_limit(self):
        failing = _inst(a=0, b=0)
        history = ExecutionHistory.from_pairs(
            [(failing, Outcome.FAIL)]
            + [(_inst(a=i, b=i), Outcome.SUCCEED) for i in range(1, 6)]
        )
        assert len(history.mutually_disjoint_successes(failing, limit=3)) == 3


class TestSatisfactionFilters:
    def test_successes_and_failures_satisfying(self, table1_history):
        iris = Conjunction([Predicate("dataset", Comparator.EQ, "iris")])
        assert len(table1_history.successes_satisfying(iris)) == 1
        assert len(table1_history.failures_satisfying(iris)) == 1


def test_copy_is_independent(table1_history):
    copy = table1_history.copy()
    copy.record(
        _inst(dataset="images", estimator="decision_tree", library_version="2.0"),
        Outcome.FAIL,
    )
    assert len(copy) == len(table1_history) + 1
