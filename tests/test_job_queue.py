"""Tests for the schema-v5 durable job queue: store-level transitions
(enqueue / claim CAS / finish / latest-wins re-enqueue / crash-edge
recovery) and the service-side DurableJobQueue codec + submit/resume."""

from __future__ import annotations

import threading

import pytest

from repro.core import Algorithm, Instance, Outcome, Parameter, ParameterSpace
from repro.exec import ExecutorSpec
from repro.provenance import SQLiteProvenanceStore
from repro.service import (
    DebugService,
    DurableJobQueue,
    JobGoal,
    JobSpec,
    JobStatus,
    spec_from_payload,
    spec_to_payload,
)
from repro.service.service import spec_fingerprint


def _space() -> ParameterSpace:
    return ParameterSpace(
        [
            Parameter("a", (0, 1, 2, 3)),
            Parameter("b", ("x", "y")),
        ]
    )


def _oracle(instance: Instance) -> Outcome:
    return Outcome.FAIL if instance["a"] == 0 else Outcome.SUCCEED


def make_queue_oracle():
    """Importable executor builder (resolved via this test module)."""
    return _oracle


def _durable_spec(job_id: str, **kwargs) -> JobSpec:
    executor_spec = ExecutorSpec.from_builder(
        "test_job_queue:make_queue_oracle"
    )
    return JobSpec(
        job_id=job_id,
        executor=executor_spec.build(),
        executor_spec=executor_spec,
        space=_space(),
        workflow=kwargs.pop("workflow", "queued"),
        algorithm=kwargs.pop("algorithm", Algorithm.DECISION_TREES),
        goal=kwargs.pop("goal", JobGoal.FIND_ALL),
        budget=kwargs.pop("budget", 40),
        **kwargs,
    )


@pytest.fixture
def store(tmp_path):
    store = SQLiteProvenanceStore(tmp_path / "queue.db")
    yield store
    store.close()


class TestQueueTransitions:
    def test_enqueue_claim_finish_lifecycle(self, store):
        store.enqueue_job("j1", {"k": 1}, tenant="acme", priority=3)
        row = store.queue_row("j1")
        assert row["status"] == "queued"
        assert row["tenant"] == "acme"
        assert row["priority"] == 3
        assert row["payload"] == {"k": 1}
        assert row["attempts"] == 0

        assert store.claim_job("j1") is True
        # The claim is compare-and-set: a second service loses the race.
        assert store.claim_job("j1") is False
        row = store.queue_row("j1")
        assert row["status"] == "running"
        assert row["attempts"] == 1

        assert store.finish_queued_job("j1") is True
        assert store.finish_queued_job("j1") is False
        assert store.queue_row("j1")["status"] == "done"

    def test_claim_requires_queued(self, store):
        assert store.claim_job("missing") is False
        store.enqueue_job("j1", {})
        store.claim_job("j1")
        store.finish_queued_job("j1")
        assert store.claim_job("j1") is False

    def test_reenqueue_is_latest_wins(self, store):
        """A duplicate job_id re-enqueue resets the row wholesale: new
        payload, status queued, attempts 0 -- regardless of the prior
        state (the satellite-4 latest-wins guarantee)."""
        store.enqueue_job("j1", {"rev": 1}, priority=1)
        store.claim_job("j1")
        store.finish_queued_job("j1")

        store.enqueue_job("j1", {"rev": 2}, tenant="acme", priority=5)
        row = store.queue_row("j1")
        assert row["status"] == "queued"
        assert row["payload"] == {"rev": 2}
        assert row["priority"] == 5
        assert row["tenant"] == "acme"
        assert row["attempts"] == 0
        assert row["claimed_at"] is None
        assert row["finished_at"] is None
        assert len(store.queue_rows()) == 1

    def test_finish_cannot_clobber_reenqueued_row(self, store):
        """finish is guarded on status='running': a stale completion
        callback racing a latest-wins re-enqueue must not mark the
        fresh queued row done."""
        store.enqueue_job("j1", {"rev": 1})
        store.claim_job("j1")
        store.enqueue_job("j1", {"rev": 2})  # latest-wins while running
        assert store.finish_queued_job("j1") is False
        assert store.queue_row("j1")["status"] == "queued"

    def test_queue_rows_filter_and_order(self, store):
        store.enqueue_job("b", {}, enqueued_at=2.0)
        store.enqueue_job("a", {}, enqueued_at=1.0)
        store.enqueue_job("c", {}, enqueued_at=3.0)
        store.claim_job("a")
        assert [r["job_id"] for r in store.queue_rows()] == ["a", "b", "c"]
        assert [
            r["job_id"] for r in store.queue_rows(status="queued")
        ] == ["b", "c"]


class TestRecoverQueue:
    def test_running_with_terminal_job_row_is_replayed(self, store):
        store.enqueue_job("j1", {})
        store.claim_job("j1")
        store.begin_job("j1", workflow="wf", algorithm="decision_trees")
        store.finish_job("j1", "succeeded", budget_spent=1, wall_seconds=0.1)

        report = store.recover_queue()
        assert report == {"replayed": 1, "requeued": 0}
        assert store.queue_row("j1")["status"] == "done"

    def test_running_without_terminal_row_is_requeued(self, store):
        store.enqueue_job("j1", {})
        store.claim_job("j1")
        # Crashed mid-run: a jobs row exists but never reached a
        # terminal status.
        store.begin_job("j1", workflow="wf", algorithm="decision_trees")

        report = store.recover_queue()
        assert report == {"replayed": 0, "requeued": 1}
        row = store.queue_row("j1")
        assert row["status"] == "queued"
        assert row["claimed_at"] is None
        # The re-claim bumps attempts again.
        assert store.claim_job("j1") is True

    def test_recover_leaves_queued_and_done_untouched(self, store):
        store.enqueue_job("fresh", {})
        store.enqueue_job("finished", {})
        store.claim_job("finished")
        store.finish_queued_job("finished")
        assert store.recover_queue() == {"replayed": 0, "requeued": 0}
        assert store.queue_row("fresh")["status"] == "queued"
        assert store.queue_row("finished")["status"] == "done"


class TestSpecCodec:
    def test_round_trip_preserves_fingerprint(self):
        spec = _durable_spec("j1", seed=7, priority=4)
        payload = spec_to_payload(spec)
        rebuilt = spec_from_payload(payload)
        assert rebuilt.job_id == "j1"
        assert rebuilt.seed == 7
        assert rebuilt.priority == 4
        assert rebuilt.algorithm is Algorithm.DECISION_TREES
        assert rebuilt.goal is JobGoal.FIND_ALL
        assert rebuilt.space.parameters[0].domain == (0, 1, 2, 3)
        assert spec_fingerprint(rebuilt) == spec_fingerprint(spec)
        # The rebuilt executor is runnable in-process.
        assert rebuilt.executor(Instance({"a": 0, "b": "x"})) is Outcome.FAIL

    def test_process_bound_specs_are_rejected(self):
        with pytest.raises(ValueError, match="no .*executor_spec"):
            spec_to_payload(
                JobSpec(job_id="j", executor=_oracle, space=_space())
            )
        with pytest.raises(ValueError, match="run"):
            spec_to_payload(
                _durable_spec("j", run=lambda session: None)
            )

    def test_future_payload_version_is_refused(self):
        payload = spec_to_payload(_durable_spec("j1"))
        payload["version"] = 999
        with pytest.raises(ValueError, match="newer"):
            spec_from_payload(payload)


class TestDurableJobQueueService:
    def test_submit_runs_job_and_marks_row_done(self, store):
        queue = DurableJobQueue(store)
        with DebugService(workers=2, store=store) as service:
            handle = queue.submit(service, _durable_spec("j1"))
            result = handle.result(timeout=30)
            assert result.status is JobStatus.SUCCEEDED
            # The done transition fires from the completion callback.
            done = threading.Event()
            handle.add_done_callback(lambda _h: done.set())
            assert done.wait(5.0)
        assert store.queue_row("j1")["status"] == "done"

    def test_submit_failure_requeues_row(self, store):
        queue = DurableJobQueue(store)
        service = DebugService(workers=1, store=store)
        service.shutdown()
        with pytest.raises(RuntimeError):
            queue.submit(service, _durable_spec("j1"))
        # The rejected submission survives for the next resume.
        assert store.queue_row("j1")["status"] == "queued"

    def test_resume_runs_queued_rows_exactly_once(self, store):
        enqueue_service = DurableJobQueue(store)
        enqueue_service.enqueue(_durable_spec("q1", seed=1))
        enqueue_service.enqueue(_durable_spec("q2", seed=2))
        # Simulate a crash mid-run: q3 was claimed but never finished.
        enqueue_service.enqueue(_durable_spec("q3", seed=3))
        store.claim_job("q3")

        queue = DurableJobQueue(store)
        with DebugService(workers=2, store=store) as service:
            report = queue.resume(service)
            assert report["replayed"] == 0
            assert report["requeued"] == 1
            assert report["corrupt"] == []
            handles = report["resumed"]
            assert sorted(h.job_id for h in handles) == ["q1", "q2", "q3"]
            for handle in handles:
                assert handle.result(timeout=30).status is JobStatus.SUCCEEDED
        for job_id in ("q1", "q2", "q3"):
            assert store.queue_row(job_id)["status"] == "done"
        # A second resume finds nothing left to do.
        with DebugService(workers=1, store=store) as service:
            report = queue.resume(service)
        assert report["resumed"] == []

    def test_resume_quarantines_corrupt_payloads(self, store):
        store.enqueue_job("poison", {"version": 1, "garbage": True})
        queue = DurableJobQueue(store)
        with DebugService(workers=1, store=store) as service:
            report = queue.resume(service)
        assert report["corrupt"] == ["poison"]
        assert report["resumed"] == []
        # The poison row is stamped done so it cannot wedge restarts.
        assert store.queue_row("poison")["status"] == "done"
