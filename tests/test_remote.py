"""Tests for the distributed fleet tier (repro.exec.remote).

Five contracts:

1. **The protocol is exact.**  Frames round-trip byte-for-byte, spec
   wire forms preserve fingerprints, and a version-mismatched hello is
   rejected instead of half-joining.
2. **Retry is one policy.**  ``RetryPolicy`` defaults reproduce the
   historical ``ProcessPool`` integers exactly; backoff is exponential,
   capped, and jittered within bounds.
3. **Fleet execution is transparent.**  A debug run dispatched over the
   fleet produces byte-identical reports and exact budgets vs the
   in-process session -- including under injected network faults
   (drop/delay/duplicate/reorder), mid-run worker kills, and
   partition-and-rejoin.
4. **Membership is elastic and consensus-free.**  Workers join and
   leave mid-job; silence turns them suspect then evicted; any frame
   (or a redial under the same name) rejoins them; no run is lost and
   none is double-executed (duplicated frames are idempotent).
5. **Capacity is adaptive.**  The sizer grows on queue depth, shrinks
   only after sustained idleness, and leaves a readable decision trail
   in the pool's stats.
"""

from __future__ import annotations

import os
import pathlib
import random
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.core import (
    Algorithm,
    DebugSession,
    DDTConfig,
    ExecutionHistory,
    Instance,
    Outcome,
)
from repro.core.ddt import debugging_decision_trees
from repro.exec import (
    AdaptiveSizer,
    ExecutorSpec,
    FaultPlan,
    FaultyConnection,
    FleetWorker,
    PoolShutDown,
    ProcessPool,
    RemoteWorkerPool,
    RetryPolicy,
    RunTimedOut,
)
from repro.exec.remote import protocol
from repro.exec.spec import artifact_cache_stats, clear_artifact_cache
from repro.exec.synthetic import build_pipeline, build_space
from repro.pipeline import Module, Workflow
from repro.pipeline.runner import ParallelDebugSession
from repro.provenance import InMemoryProvenanceStore
from repro.service import DebugService, JobGoal, JobSpec, JobStatus

SYNTH = "repro.exec.synthetic:build_pipeline"
SPACE = build_space(n_params=4, domain=4)
FAIL_WHEN = {"p0": 1, "p1": 2}

#: Fast liveness timings for in-thread fleets (suspect at 2.5x = 0.15s,
#: evict at 5x = 0.3s).
HB = 0.06


def synth_spec(**kwargs) -> ExecutorSpec:
    return ExecutorSpec.from_builder(SYNTH, fail_when=FAIL_WHEN, **kwargs)


def seed_history(executor) -> ExecutionHistory:
    """Same deterministic seeding as tests/test_exec.py (rng seed 11)."""
    history = ExecutionHistory()
    rng = random.Random(11)
    history.record(
        Instance({"p0": 1, "p1": 2, "p2": 0, "p3": 3}), Outcome.FAIL
    )
    for __ in range(8):
        instance = SPACE.random_instance(rng)
        if instance not in history:
            history.record(instance, executor(instance))
    return history


def ddt_fingerprint(session, seed: int = 3):
    """Run DDT FindAll and fingerprint everything report-shaped."""
    result = debugging_decision_trees(
        session,
        DDTConfig(
            find_all=True,
            tests_per_suspect=6,
            exploration_per_round=4,
            max_rounds=20,
            seed=seed,
        ),
    )
    history = session.history
    return (
        tuple(str(c) for c in result.causes),
        str(result.explanation),
        result.instances_executed,
        result.rounds,
        session.budget.spent,
        session.new_executions,
        tuple(
            sorted(
                (repr(i), history.outcome_of(i).value)
                for i in history.instances
            )
        ),
    )


def make_pool(**kwargs) -> RemoteWorkerPool:
    kwargs.setdefault("heartbeat_interval", HB)
    if "store" not in kwargs:
        kwargs["store"] = InMemoryProvenanceStore()
    return RemoteWorkerPool(**kwargs)


def start_workers(
    pool: RemoteWorkerPool, count: int, **kwargs
) -> list[FleetWorker]:
    """Join ``count`` in-thread workers and wait until all are active."""
    host, port = pool.address
    workers = [
        FleetWorker(host, port, name=kwargs.pop("name", None) or f"w{i}", **kwargs)
        for i in range(count)
    ]
    for worker in workers:
        worker.start()
    assert pool.wait_for_workers(count, timeout=10.0)
    return workers


def stop_workers(workers) -> None:
    for worker in workers:
        worker.stop()
    for worker in workers:
        worker.join(timeout=5.0)


def wait_until(predicate, timeout: float = 5.0, message: str = "condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {message}")


@pytest.fixture(scope="module")
def serial_expected():
    """The in-process serial reference fingerprint every fleet scenario
    must reproduce byte-for-byte."""
    reference = build_pipeline(fail_when=FAIL_WHEN)
    return ddt_fingerprint(
        DebugSession(
            build_pipeline(fail_when=FAIL_WHEN),
            SPACE,
            history=seed_history(reference),
        )
    )


# ---------------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_frame_roundtrip_and_eof(self):
        left_sock, right_sock = socket.socketpair()
        left = protocol.Connection(left_sock)
        right = protocol.Connection(right_sock)
        message = {
            "type": "probe",
            "nested": {"a": [1, 2.5, "x", None, True]},
            "text": "unicode éü",
        }
        left.send(message)
        assert right.recv() == message
        left.close()
        assert right.recv() is None  # EOF reads as a clean None
        right.close()

    def test_value_codec_preserves_types(self):
        values = {"i": 3, "f": 1.5, "s": "two", "b": True, "n": None}
        decoded = protocol.decode_values(protocol.encode_values(values))
        assert decoded == values
        for key in values:
            assert type(decoded[key]) is type(values[key])

    def test_spec_wire_roundtrip_preserves_fingerprint(self):
        spec = synth_spec(work_iterations=5, mode="cpu")
        clone = ExecutorSpec.from_wire(spec.to_wire())
        assert clone.fingerprint == spec.fingerprint
        executor = clone.build()
        assert executor(Instance({"p0": 1, "p1": 2, "p2": 3, "p3": 0}))\
            is Outcome.FAIL
        assert executor(Instance({"p0": 0, "p1": 0, "p2": 0, "p3": 0}))\
            is Outcome.SUCCEED

    def test_version_mismatch_is_rejected(self):
        with make_pool(store=None) as pool:
            conn = protocol.connect(*pool.address)
            conn.send({"type": "hello", "name": "old", "protocol": 99})
            reply = conn.recv()
            assert reply is not None and reply["type"] == "reject"
            conn.close()
            assert pool.stats()["workers_joined"] == 0


# ---------------------------------------------------------------------------
# Unified retry policy
# ---------------------------------------------------------------------------

class TestRetryPolicy:
    def test_defaults_preserve_legacy_pool_behavior(self):
        policy = RetryPolicy()
        assert (policy.crash_retries, policy.timeout_retries) == (1, 0)
        state = policy.start()
        assert state.next_delay("crash") == 0.0  # immediate, once
        assert state.next_delay("crash") is None
        assert state.next_delay("timeout") is None
        assert state.retries_used == 1

    def test_legacy_ints_still_configure_process_pool(self):
        pool = ProcessPool(max_workers=1, crash_retries=2, timeout_retries=1)
        try:
            assert pool.retry_policy.crash_retries == 2
            assert pool.retry_policy.timeout_retries == 1
            assert pool.retry_policy.base_delay == 0.0
            assert (pool.crash_retries, pool.timeout_retries) == (2, 1)
        finally:
            pool.shutdown()

    def test_exponential_backoff_capped(self):
        policy = RetryPolicy(
            crash_retries=4, base_delay=0.1, factor=2.0, max_delay=0.25
        )
        state = policy.start()
        delays = [state.next_delay("crash") for __ in range(5)]
        assert delays[:4] == pytest.approx([0.1, 0.2, 0.25, 0.25])
        assert delays[4] is None

    def test_jitter_stays_within_bounds(self):
        policy = RetryPolicy(
            crash_retries=50, base_delay=0.1, factor=1.0, jitter=0.5, seed=7
        )
        state = policy.start()
        for __ in range(50):
            delay = state.next_delay("crash")
            assert 0.1 <= delay <= 0.15

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(crash_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy().budget("cosmic-ray")


# ---------------------------------------------------------------------------
# Fleet basics: dispatch, dedup, elasticity, degradation
# ---------------------------------------------------------------------------

class TestFleetBasics:
    def test_outcomes_match_in_process(self):
        reference = build_pipeline(fail_when=FAIL_WHEN)
        rng = random.Random(0)
        instances = [SPACE.random_instance(rng) for __ in range(6)]
        instances.append(Instance({"p0": 1, "p1": 2, "p2": 3, "p3": 3}))
        with make_pool() as pool:
            workers = start_workers(pool, 2)
            spec = synth_spec()
            for instance in instances:
                assert pool.run(spec, "wf", instance) is reference(instance)
            stats = pool.stats()
            stop_workers(workers)
        assert stats["runs"] == len(instances)
        assert stats["local_runs"] == 0
        assert stats["workers_joined"] == 2

    def test_provenance_dedup_across_the_fleet(self):
        instance = Instance({"p0": 1, "p1": 2, "p2": 0, "p3": 0})
        with make_pool() as pool:
            workers = start_workers(pool, 2)
            spec = synth_spec()
            for __ in range(3):
                assert pool.run(spec, "wf", instance) is Outcome.FAIL
            stats = pool.stats()
            stop_workers(workers)
        # First run executes; repeats are answered from the shared store
        # regardless of which worker they landed on.
        assert stats["store_hits"] >= 2
        executions = sum(w.runner.stats["executions"] for w in workers)
        assert executions == 1

    def test_drain_falls_back_to_local_execution(self):
        instance = Instance({"p0": 0, "p1": 0, "p2": 0, "p3": 0})
        with make_pool() as pool:
            workers = start_workers(pool, 1)
            assert pool.run(synth_spec(), "wf", instance) is Outcome.SUCCEED
            stop_workers(workers)
            wait_until(
                lambda: pool.stats()["workers_left"] == 1,
                message="graceful leave",
            )
            # Fleet drained: execution degrades to the local path.
            assert pool.run(synth_spec(), "wf", instance) is Outcome.SUCCEED
            stats = pool.stats()
        assert stats["local_runs"] == 1
        assert stats["workers_left"] == 1
        # The local path shares the provenance dedup with the fleet.
        assert stats["store_hits"] >= 1

    def test_worker_joining_mid_stream_takes_over(self):
        instance = Instance({"p0": 2, "p1": 2, "p2": 0, "p3": 0})
        with make_pool() as pool:
            assert pool.run(synth_spec(), "wf", instance) is Outcome.SUCCEED
            assert pool.stats()["local_runs"] == 1
            workers = start_workers(pool, 1)
            other = Instance({"p0": 3, "p1": 1, "p2": 0, "p3": 0})
            assert pool.run(synth_spec(), "wf", other) is Outcome.SUCCEED
            stats = pool.stats()
            stop_workers(workers)
        assert stats["local_runs"] == 1  # the second run went remote
        assert workers[0].executed == 1

    def test_latest_registration_wins(self):
        with make_pool(store=None) as pool:
            first = FleetWorker(*pool.address, name="dup").start()
            assert pool.wait_for_workers(1)
            second = FleetWorker(*pool.address, name="dup").start()
            wait_until(
                lambda: pool.stats()["workers_joined"] == 2,
                message="duplicate registration",
            )
            roster = pool.workers()
            assert [w["name"] for w in roster] == ["dup"]
            instance = Instance({"p0": 0, "p1": 1, "p2": 0, "p3": 0})
            assert pool.run(synth_spec(), "wf", instance) is Outcome.SUCCEED
            assert second.executed == 1
            second.stop()
            first.kill()

    def test_shutdown_dismisses_fleet_and_blocks_runs(self):
        pool = make_pool(store=None)
        workers = start_workers(pool, 1)
        pool.shutdown()
        with pytest.raises(PoolShutDown):
            pool.run(synth_spec(), "wf", Instance({"p0": 0, "p1": 0,
                                                   "p2": 0, "p3": 0}))
        # The bye frame (or the closed socket) stops the worker.
        wait_until(
            lambda: not workers[0].connected.is_set(), message="worker stop"
        )
        stop_workers(workers)


# ---------------------------------------------------------------------------
# Liveness: heartbeats, suspicion, eviction, redispatch
# ---------------------------------------------------------------------------

class TestLiveness:
    def test_silent_worker_turns_suspect_then_recovers(self):
        with make_pool(store=None) as pool:
            workers = start_workers(pool, 1)
            workers[0].pause_heartbeats()
            wait_until(
                lambda: pool.stats()["suspects"] >= 1, message="suspicion"
            )
            workers[0].resume_heartbeats()
            wait_until(
                lambda: pool.stats()["suspect_recoveries"] >= 1,
                message="recovery",
            )
            stats = pool.stats()
            assert stats["active_workers"] == 1
            assert stats["workers_evicted"] == 0
            stop_workers(workers)

    def test_prolonged_silence_evicts_then_heartbeat_rejoins(self):
        with make_pool(store=None) as pool:
            workers = start_workers(pool, 1)
            workers[0].pause_heartbeats()
            wait_until(
                lambda: pool.stats()["workers_evicted"] >= 1,
                message="eviction",
            )
            assert pool.stats()["active_workers"] == 0
            # The connection was kept (partition, not death): the next
            # frame is proof of life and rejoins in-band.
            workers[0].resume_heartbeats()
            wait_until(
                lambda: pool.stats()["workers_rejoined"] >= 1,
                message="in-band rejoin",
            )
            assert pool.stats()["active_workers"] == 1
            stop_workers(workers)

    def test_mid_run_kill_redispatches_to_surviving_worker(self):
        instance = Instance({"p0": 1, "p1": 2, "p2": 1, "p3": 1})
        with make_pool(store=None, local_fallback=False) as pool:
            workers = start_workers(
                pool, 2, heartbeat_interval=HB
            )
            spec = synth_spec(mode="sleep", sleep_seconds=0.4)
            outcome: list = []
            runner = threading.Thread(
                target=lambda: outcome.append(pool.run(spec, "wf", instance))
            )
            runner.start()
            # Dispatch targets the least-loaded worker: w0.  Kill it
            # once the run is in flight.
            wait_until(
                lambda: any(w["inflight"] for w in pool.workers()),
                message="dispatch",
            )
            victim = next(
                w for w in workers
                if any(
                    r["name"] == w.name and r["inflight"]
                    for r in pool.workers()
                )
            )
            victim.kill()
            runner.join(timeout=15.0)
            assert not runner.is_alive()
            assert outcome == [Outcome.FAIL]
            stats = pool.stats()
            stop_workers(workers)
        assert stats["workers_lost"] >= 1
        assert stats["redispatches"] >= 1
        assert stats["runs"] == 1

    def test_hung_run_times_out_and_evicts_the_worker(self):
        with make_pool(
            store=None,
            local_fallback=False,
            run_timeout=0.3,
            retry_policy=RetryPolicy(crash_retries=0, timeout_retries=0),
        ) as pool:
            workers = start_workers(pool, 1)
            with pytest.raises(RunTimedOut):
                pool.run(
                    synth_spec(mode="sleep", sleep_seconds=1.5),
                    "wf",
                    Instance({"p0": 0, "p1": 0, "p2": 0, "p3": 0}),
                )
            stats = pool.stats()
        assert stats["timeouts"] == 1
        assert stats["workers_evicted"] == 1
        stop_workers(workers)


# ---------------------------------------------------------------------------
# Differential identity under network faults (the headline contract)
# ---------------------------------------------------------------------------

class TestFaultDifferential:
    def _fleet_fingerprint(
        self,
        pool: RemoteWorkerPool,
        spec_kwargs: dict | None = None,
        parallel: bool = False,
    ):
        reference = build_pipeline(fail_when=FAIL_WHEN)
        session = pool.session(
            synth_spec(**(spec_kwargs or {})),
            SPACE,
            history=seed_history(reference),
            parallel=parallel,
        )
        return ddt_fingerprint(session)

    def test_chaotic_network_keeps_report_byte_identical(
        self, serial_expected
    ):
        """Drop/delay/duplicate/reorder on both directions of the wire:
        the debug report, the budget, and the execution counts stay
        byte-identical to the serial in-process run."""
        worker_taps: list[FaultyConnection] = []

        def worker_wrapper(conn):
            tap = FaultyConnection(
                conn,
                FaultPlan(
                    drop=0.05,
                    delay=0.10,
                    duplicate=0.10,
                    reorder=0.05,
                    delay_seconds=0.02,
                    seed=7 + len(worker_taps),
                ),
            )
            worker_taps.append(tap)
            return tap

        def coordinator_filter(conn):
            return FaultyConnection(
                conn,
                FaultPlan(
                    drop=0.03,
                    delay=0.08,
                    duplicate=0.08,
                    delay_seconds=0.02,
                    seed=11,
                ),
            )

        with make_pool(
            heartbeat_interval=0.1,
            suspect_after=0.3,
            evict_after=0.6,
            run_timeout=0.8,
            retry_policy=RetryPolicy(
                crash_retries=8,
                timeout_retries=8,
                base_delay=0.01,
                factor=1.5,
                max_delay=0.1,
                jitter=0.25,
                seed=5,
            ),
            connection_filter=coordinator_filter,
        ) as pool:
            workers = [
                FleetWorker(
                    *pool.address,
                    name=f"chaos-w{i}",
                    connection_wrapper=worker_wrapper,
                    reconnect_attempts=6,
                    reconnect_delay=0.05,
                    store_timeout=0.3,
                ).start()
                for i in range(2)
            ]
            assert pool.wait_for_workers(1, timeout=10.0)
            fleet = self._fleet_fingerprint(pool)
            stats = pool.stats()
            stop_workers(workers)
        assert fleet == serial_expected
        assert stats["runs"] + stats["local_runs"] > 0
        injected = sum(
            sum(tap.faults.values()) for tap in worker_taps
        )
        assert injected > 0, "the chaos plan never fired"

    def test_mid_run_worker_death_keeps_report_identical(
        self, serial_expected
    ):
        with make_pool() as pool:
            workers = start_workers(pool, 2)
            killer = threading.Timer(0.15, workers[0].kill)
            killer.daemon = True
            killer.start()
            fleet = self._fleet_fingerprint(
                pool, spec_kwargs={"mode": "sleep", "sleep_seconds": 0.01}
            )
            killer.join()
            stats = pool.stats()
            stop_workers(workers)
        assert fleet == serial_expected
        assert stats["workers_lost"] >= 1

    def test_partition_and_rejoin_keeps_report_identical(
        self, serial_expected
    ):
        taps: list[FaultyConnection] = []

        def tap_wrapper(conn):
            tap = FaultyConnection(conn, FaultPlan())
            taps.append(tap)
            return tap

        with make_pool(
            run_timeout=0.5,
            retry_policy=RetryPolicy(
                crash_retries=6, timeout_retries=6, base_delay=0.01
            ),
        ) as pool:
            workers = [
                FleetWorker(
                    *pool.address,
                    name=f"part-w{i}",
                    connection_wrapper=tap_wrapper,
                    reconnect_attempts=6,
                    reconnect_delay=0.05,
                    store_timeout=0.3,
                ).start()
                for i in range(2)
            ]
            assert pool.wait_for_workers(2, timeout=10.0)

            def chaos():
                taps[0].partition()
                time.sleep(0.5)
                taps[0].heal()

            saboteur = threading.Timer(0.1, chaos)
            saboteur.daemon = True
            saboteur.start()
            fleet = self._fleet_fingerprint(
                pool, spec_kwargs={"mode": "sleep", "sleep_seconds": 0.01}
            )
            saboteur.join()
            # Heartbeats outlive the job: the healed (or redialed)
            # member must end up back in the fleet.
            wait_until(
                lambda: pool.stats()["workers_rejoined"] >= 1,
                timeout=10.0,
                message="partition heal rejoin",
            )
            stats = pool.stats()
            stop_workers(workers)
        assert fleet == serial_expected
        assert stats["workers_evicted"] >= 1
        assert stats["workers_rejoined"] >= 1

    def test_duplicated_frames_never_double_execute(self):
        """duplicate=1.0 on both directions: every run frame arrives
        twice at the worker, every result twice at the coordinator.
        Exactly one execution per distinct instance happens."""
        plan_kwargs = {"duplicate": 1.0, "seed": 3}
        with make_pool(
            store=None,
            connection_filter=lambda c: FaultyConnection(
                c, FaultPlan(**plan_kwargs)
            ),
        ) as pool:
            workers = [
                FleetWorker(
                    *pool.address,
                    name="dup-w0",
                    connection_wrapper=lambda c: FaultyConnection(
                        c, FaultPlan(**plan_kwargs)
                    ),
                ).start()
            ]
            assert pool.wait_for_workers(1)
            reference = build_pipeline(fail_when=FAIL_WHEN)
            rng = random.Random(2)
            instances = {SPACE.random_instance(rng) for __ in range(8)}
            for instance in instances:
                assert (
                    pool.run(synth_spec(), "wf", instance)
                    is reference(instance)
                )
            stats = pool.stats()
            stop_workers(workers)
        assert workers[0].runner.stats["executions"] == len(instances)
        assert stats["runs"] == len(instances)
        assert stats["duplicate_results"] >= 1

    def test_parallel_fleet_matches_thread_parallel_twin(self):
        """The speculative parallel discipline on the fleet (batches
        fanned out over max_dispatch) matches the thread-parallel twin
        byte-for-byte, even with a mildly faulty wire."""
        reference = build_pipeline(fail_when=FAIL_WHEN)
        expected = ddt_fingerprint(
            ParallelDebugSession(
                build_pipeline(fail_when=FAIL_WHEN),
                SPACE,
                history=seed_history(reference),
                workers=2,
            )
        )
        plan = FaultPlan(delay=0.15, duplicate=0.15, delay_seconds=0.01,
                         seed=13)
        with make_pool(
            max_dispatch=2,
            connection_filter=lambda c: FaultyConnection(c, plan),
        ) as pool:
            workers = start_workers(pool, 2)
            fleet = self._fleet_fingerprint(pool, parallel=True)
            stop_workers(workers)
        assert fleet == expected


# ---------------------------------------------------------------------------
# Service integration: fleet-backed jobs + fleet events
# ---------------------------------------------------------------------------

def _job(job_id: str, **kwargs) -> JobSpec:
    executor = build_pipeline(fail_when=FAIL_WHEN)
    spec = {
        "job_id": job_id,
        "executor": executor,
        "space": SPACE,
        "workflow": "synthetic",
        "algorithm": Algorithm.DECISION_TREES,
        "goal": JobGoal.FIND_ALL,
        "history": seed_history(executor),
        "seed": 3,
        "ddt_config": DDTConfig(
            find_all=True,
            tests_per_suspect=6,
            exploration_per_round=4,
            max_rounds=20,
            seed=3,
        ),
    }
    spec.update(kwargs)
    return JobSpec(**spec)


class TestServiceOnFleet:
    def test_fleet_jobs_match_inline_jobs_and_publish_fleet_events(self):
        with DebugService(workers=2) as service:
            baseline = service.run_all(
                [_job("inline-0"), _job("inline-1")], timeout=120.0
            )
        with make_pool() as pool:
            with DebugService(workers=2, pool=pool) as service:
                workers = start_workers(pool, 2)
                results = service.run_all(
                    [
                        _job("fleet-0", executor_spec=synth_spec()),
                        _job("fleet-1", executor_spec=synth_spec()),
                    ],
                    timeout=120.0,
                )
                # Membership changes land in the service's event log
                # under the fleet job id.
                kinds = {e.kind for e in service.events.log("fleet")}
                stop_workers(workers)
        assert "worker_joined" in kinds
        for base, fleet in zip(baseline, results):
            assert fleet.status is JobStatus.SUCCEEDED
            assert [str(c) for c in fleet.report.causes] == [
                str(c) for c in base.report.causes
            ]
            assert str(fleet.report.explanation) == str(
                base.report.explanation
            )
            assert fleet.budget_spent == base.budget_spent
            assert fleet.new_executions == base.new_executions

    def test_autoscaling_service_records_decisions(self):
        with make_pool() as pool:
            with DebugService(workers=2, pool=pool, autoscale=True) as service:
                workers = start_workers(pool, 1)
                result = service.run_all(
                    [
                        _job(
                            "scaled",
                            executor_spec=synth_spec(
                                mode="sleep", sleep_seconds=0.01
                            ),
                        )
                    ],
                    timeout=120.0,
                )[0]
                assert result.status is JobStatus.SUCCEEDED
                wait_until(
                    lambda: pool.stats().get("autoscale", {}).get("ticks", 0)
                    >= 1,
                    message="sizer tick",
                )
                autoscale = pool.stats()["autoscale"]
                stop_workers(workers)
        assert autoscale["ticks"] >= 1
        assert set(autoscale) >= {
            "ticks",
            "scale_ups",
            "scale_downs",
            "decisions",
            "min_workers",
            "max_workers",
        }


# ---------------------------------------------------------------------------
# Adaptive sizing
# ---------------------------------------------------------------------------

class _FakePool:
    """Minimal scale_to/live_workers/max_workers contract for unit tests."""

    def __init__(self, max_workers: int = 4):
        self.live = 0
        self.max_workers = max_workers
        self.min_workers = 0
        self.sizer = None

    @property
    def live_workers(self) -> int:
        return self.live

    def scale_to(self, target: int) -> int:
        before = self.live
        self.live = max(self.min_workers, min(target, self.max_workers))
        return self.live - before

    def attach_sizer(self, sizer) -> None:
        self.sizer = sizer


class TestAdaptiveSizer:
    def test_grows_eagerly_and_shrinks_with_hysteresis(self):
        pool = _FakePool(max_workers=4)
        depth = {"value": 0}
        sizer = AdaptiveSizer(
            pool, depth=lambda: depth["value"], shrink_after=3, start=False
        )
        assert pool.sizer is sizer  # self-attached for stats surfacing
        assert sizer.tick() is None  # idle, nothing to do
        depth["value"] = 10
        decision = sizer.tick()
        assert decision["action"] == "grow"
        assert pool.live == 4  # clamped to max_workers
        depth["value"] = 2
        assert sizer.tick() is None  # demand < capacity: hold
        depth["value"] = 0
        assert sizer.tick() is None  # idle tick 1
        assert sizer.tick() is None  # idle tick 2
        decision = sizer.tick()  # idle tick 3: hysteresis satisfied
        assert decision["action"] == "shrink"
        assert pool.live == 0
        stats = sizer.stats()
        assert stats["scale_ups"] == 1 and stats["scale_downs"] == 1
        assert [d["action"] for d in stats["decisions"]] == ["grow", "shrink"]

    def test_brief_idleness_does_not_shrink(self):
        pool = _FakePool()
        depth = {"value": 3}
        sizer = AdaptiveSizer(
            pool, depth=lambda: depth["value"], shrink_after=4, start=False
        )
        sizer.tick()
        assert pool.live == 3
        for __ in range(3):
            depth["value"] = 0
            sizer.tick()
            depth["value"] = 1  # burst resumes: idle streak resets
            sizer.tick()
        assert pool.live == 3  # never shrank

    def test_process_pool_scale_to_is_symmetric(self):
        with ProcessPool(max_workers=2, prewarm=0) as pool:
            assert pool.scale_to(2) == 2
            assert pool.live_workers == 2
            assert pool.scale_to(0) == -2
            assert pool.live_workers == 0
            assert pool.scale_to(5) == 2  # clamped to max_workers

    def test_remote_pool_scale_to_moves_fallback_capacity(self):
        with make_pool(store=None, fallback_limit=4) as pool:
            assert pool.scale_to(2) == -2
            assert pool.stats()["fallback_limit"] == 2
            assert pool.scale_to(6) == 4
            assert pool.stats()["fallback_limit"] == 6


# ---------------------------------------------------------------------------
# Warm artifact cache
# ---------------------------------------------------------------------------

def _gen(x):
    return [x * i for i in range(4)]


def _agg(data, mode):
    return sum(data) if mode == "sum" else max(data)


def _toy_workflow_spec(threshold: float = 4.0) -> ExecutorSpec:
    from repro.core import Parameter, ParameterKind, ParameterSpace

    space = ParameterSpace(
        [
            Parameter("x", (1, 2, 3), ParameterKind.ORDINAL),
            Parameter("mode", ("sum", "max")),
        ]
    )
    workflow = Workflow("toy", space, sink=("agg", "out"))
    workflow.add_module(Module("gen", _gen, parameters=("x",)))
    workflow.add_module(
        Module("agg", _agg, inputs=("data",), parameters=("mode",))
    )
    workflow.connect("gen", "out", "agg", "data")
    return ExecutorSpec.from_workflow(
        workflow,
        registry={"gen": "test_remote:_gen", "agg": "test_remote:_agg"},
        threshold=threshold,
    )


class TestWarmArtifactCache:
    def test_repeated_builds_hit_the_cache(self):
        clear_artifact_cache()
        spec = _toy_workflow_spec()
        executor = spec.build()
        assert executor(Instance({"x": 2, "mode": "sum"})) is Outcome.SUCCEED
        after_first = artifact_cache_stats()
        assert after_first["misses"] >= 1
        spec.build()
        assert artifact_cache_stats()["hits"] == after_first["hits"] + 1

    def test_wire_roundtrip_still_hits_the_warm_cache(self):
        clear_artifact_cache()
        spec = _toy_workflow_spec()
        spec.build()
        clone = ExecutorSpec.from_wire(spec.to_wire())
        assert clone.fingerprint == spec.fingerprint
        before = artifact_cache_stats()["hits"]
        executor = clone.build()
        assert artifact_cache_stats()["hits"] == before + 1
        assert executor(Instance({"x": 1, "mode": "max"})) is Outcome.FAIL

    def test_different_workflows_do_not_collide(self):
        clear_artifact_cache()
        a = _toy_workflow_spec(threshold=4.0)
        b = _toy_workflow_spec(threshold=100.0)
        assert a.build()(Instance({"x": 2, "mode": "sum"})) is Outcome.SUCCEED
        assert b.build()(Instance({"x": 2, "mode": "sum"})) is Outcome.FAIL
        assert artifact_cache_stats()["entries"] >= 1


# ---------------------------------------------------------------------------
# The `repro worker` CLI entry point
# ---------------------------------------------------------------------------

class TestWorkerCLI:
    def test_subprocess_worker_serves_runs_and_exits_on_bye(self):
        repo = pathlib.Path(__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo / "src")
        pool = make_pool(store=None)
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "worker",
                "--connect",
                pool.endpoint,
                "--name",
                "cli-w0",
                "--reconnect",
                "0",
            ],
            env=env,
            cwd=str(repo),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            assert pool.wait_for_workers(1, timeout=30.0)
            instance = Instance({"p0": 1, "p1": 2, "p2": 2, "p3": 2})
            assert pool.run(synth_spec(), "wf", instance) is Outcome.FAIL
            stats = pool.stats()
            assert stats["runs"] == 1 and stats["local_runs"] == 0
            assert stats["workers"][0]["name"] == "cli-w0"
        finally:
            pool.shutdown()
            try:
                assert process.wait(timeout=15.0) == 0
            finally:
                if process.poll() is None:
                    process.kill()
