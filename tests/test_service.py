"""Tests for the debugging job service (repro.service): the single-flight
execution cache, the shared scheduler, and DebugService end-to-end --
including the >= 8-concurrent-job stress test over a shared
flaky/latency executor."""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.core import (
    Algorithm,
    BudgetExhausted,
    BugDoc,
    DebugSession,
    Instance,
    Outcome,
    Parameter,
    ParameterSpace,
)
from repro.core.ddt import DDTConfig
from repro.pipeline import CountingExecutor, FlakyExecutor, LatencyExecutor
from repro.provenance import ProvenanceRecord, SQLiteProvenanceStore
from repro.provenance.store import InMemoryProvenanceStore
from repro.service import (
    DebugService,
    ExecutionCache,
    JobCancelled,
    JobGoal,
    JobSpec,
    JobStatus,
    SharedScheduler,
    SingleFlightCache,
)


def _space() -> ParameterSpace:
    return ParameterSpace(
        [
            Parameter("a", (0, 1, 2, 3, 4, 5)),
            Parameter("b", ("x", "y", "z")),
            Parameter("c", (0, 1, 2)),
        ]
    )


def _oracle(instance: Instance) -> Outcome:
    return Outcome.FAIL if instance["a"] == 0 else Outcome.SUCCEED


def _instances(seed: int, count: int) -> list[Instance]:
    rng = random.Random(seed)
    space = _space()
    return [space.random_instance(rng) for _ in range(count)]


class TestSingleFlightCache:
    def test_concurrent_requests_execute_once(self):
        cache = SingleFlightCache()
        barrier = threading.Barrier(6)
        calls = []
        lock = threading.Lock()

        def produce():
            with lock:
                calls.append(threading.get_ident())
            time.sleep(0.05)
            return "value"

        results = []

        def request():
            barrier.wait()
            results.append(cache.get_or_execute("key", produce))

        threads = [threading.Thread(target=request) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results == ["value"] * 6
        assert len(calls) == 1
        assert cache.stats.executions == 1
        assert cache.stats.coalesced == 5

    def test_leader_failure_hands_flight_to_waiter(self):
        cache = SingleFlightCache()
        started = threading.Event()
        release = threading.Event()
        attempts = []
        lock = threading.Lock()

        def produce():
            with lock:
                attempts.append(None)
                attempt = len(attempts)
            if attempt == 1:
                started.set()
                release.wait(2.0)
                raise RuntimeError("leader crashed")
            return "recovered"

        errors = []
        values = []

        def leader():
            try:
                cache.get_or_execute("key", produce)
            except RuntimeError as error:
                errors.append(error)

        def waiter():
            started.wait(2.0)
            values.append(cache.get_or_execute("key", produce))

        leader_thread = threading.Thread(target=leader)
        waiter_thread = threading.Thread(target=waiter)
        leader_thread.start()
        waiter_thread.start()
        started.wait(2.0)
        time.sleep(0.05)  # let the waiter join the in-flight request
        release.set()
        leader_thread.join()
        waiter_thread.join()
        # The leader's exception reached only the leader; the waiter
        # retried, became the new leader, and got a value.
        assert len(errors) == 1
        assert values == ["recovered"]
        assert len(attempts) == 2
        assert cache.stats.failures == 1
        assert cache.peek("key") == "recovered"
        # Stats: two logical requests (one miss, one coalesced) even
        # though the waiter retried and became the second leader.
        assert cache.stats.requests == 2
        assert cache.stats.misses == 1
        assert cache.stats.coalesced == 1
        assert cache.stats.executions == 1


class TestExecutionCache:
    def test_persistent_tier_hit_skips_execution(self):
        store = SQLiteProvenanceStore(":memory:")
        instance = Instance({"a": 0, "b": "x", "c": 1})
        store.upsert(
            ProvenanceRecord(
                workflow="w", instance=instance, outcome=Outcome.FAIL
            )
        )
        counting = CountingExecutor(_oracle)
        cache = ExecutionCache(store=store)
        assert cache.evaluate("w", instance, counting) is Outcome.FAIL
        assert counting.calls == 0
        assert cache.stats.persistent_hits == 1
        assert cache.stats.executions == 0
        # Second request is a pure memory hit.
        assert cache.evaluate("w", instance, counting) is Outcome.FAIL
        assert cache.stats.hits == 1

    def test_write_through_to_store(self):
        store = InMemoryProvenanceStore()
        cache = ExecutionCache(store=store)
        instance = Instance({"a": 1, "b": "y", "c": 0})
        assert cache.evaluate("w", instance, _oracle) is Outcome.SUCCEED
        record = store.lookup("w", instance)
        assert record is not None
        assert record.outcome is Outcome.SUCCEED

    def test_workflows_are_isolated(self):
        counting = CountingExecutor(_oracle)
        cache = ExecutionCache()
        instance = Instance({"a": 1, "b": "y", "c": 0})
        cache.evaluate("w1", instance, counting)
        cache.evaluate("w2", instance, counting)
        assert counting.calls == 2
        cache.evaluate("w1", instance, counting)
        assert counting.calls == 2


class TestSharedScheduler:
    def test_round_robin_fairness_across_jobs(self):
        """A late job's two requests are not starved by an early job's ten."""
        completed = []
        lock = threading.Lock()
        gate = threading.Event()

        def task(job, index):
            def thunk():
                gate.wait(5.0)
                with lock:
                    completed.append((job, index))

            return thunk

        with SharedScheduler(workers=1) as scheduler:
            blocker = scheduler.submit("warmup", lambda: gate.wait(5.0))
            requests = [
                scheduler.submit("big", task("big", index)) for index in range(10)
            ]
            requests += [
                scheduler.submit("small", task("small", index))
                for index in range(2)
            ]
            gate.set()
            for request in requests:
                request.result()
            blocker.result()
        small_positions = [
            position
            for position, (job, _) in enumerate(completed)
            if job == "small"
        ]
        # Round-robin: small's requests interleave near the front rather
        # than waiting for all ten of big's.
        assert small_positions[0] <= 2
        assert small_positions[1] <= 4

    def test_skip_resolves_without_dispatch(self):
        with SharedScheduler(workers=2) as scheduler:
            request = scheduler.submit(
                "job", lambda: "ran", skip=lambda: True
            )
            assert request.result() is None
            assert request.skipped is True
            assert scheduler.stats.skipped == 1

    def test_errors_are_delivered_to_the_waiter(self):
        def boom():
            raise ValueError("task failed")

        with SharedScheduler(workers=2) as scheduler:
            request = scheduler.submit("job", boom)
            with pytest.raises(ValueError, match="task failed"):
                request.result()
            assert scheduler.stats.errors == 1

    def test_pool_is_elastic(self):
        scheduler = SharedScheduler(workers=4, idle_timeout=0.1)
        scheduler.run_batch("job", [lambda: None for _ in range(8)])
        deadline = time.time() + 3.0
        while scheduler.live_workers > 0 and time.time() < deadline:
            time.sleep(0.05)
        assert scheduler.live_workers == 0
        # ...and respawns on demand.
        assert scheduler.run_batch("job", [lambda: 7])[0] == 7
        scheduler.shutdown()

    def test_shutdown_rejects_new_work(self):
        scheduler = SharedScheduler(workers=1)
        scheduler.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            scheduler.submit("job", lambda: None)


class TestBackendHook:
    def test_session_parallel_flag_follows_backend(self):
        serial = DebugSession(_oracle, _space())
        assert serial.parallel is False
        with SharedScheduler(workers=2) as scheduler:
            parallel = DebugSession(
                _oracle, _space(), backend=scheduler.backend("job")
            )
            assert parallel.parallel is True

    def test_budget_aware_skip_in_batches(self):
        """Batch items beyond the budget are skipped, not dispatched."""
        from repro.core import InstanceBudget

        with SharedScheduler(workers=1) as scheduler:
            session = DebugSession(
                _oracle,
                _space(),
                budget=InstanceBudget(2),
                backend=scheduler.backend("job"),
            )
            batch = [
                Instance({"a": a, "b": "x", "c": 0}) for a in (0, 1, 2, 3, 4, 5)
            ]
            results = session.evaluate_many(batch)
            assert session.budget.spent == 2
            assert sum(1 for outcome in results if outcome is not None) == 2
            # The single worker drains FIFO, so items after exhaustion
            # were resolved by the budget-aware skip path.
            assert scheduler.stats.skipped == 4


def _custom_job(spec_id, instances, budget=None, **kwargs):
    """A JobSpec with a deterministic custom body evaluating `instances`."""

    def run(session):
        evaluated = 0
        for instance in instances:
            try:
                session.evaluate(instance)
                evaluated += 1
            except BudgetExhausted:
                break
            except RuntimeError:
                continue  # injected executor failure; budget refunded
        return evaluated

    return JobSpec(
        job_id=spec_id,
        executor=kwargs.pop("executor"),
        space=_space(),
        workflow=kwargs.pop("workflow", "shared"),
        budget=budget,
        run=run,
        **kwargs,
    )


class TestDebugServiceStress:
    """The satellite stress test: >= 8 concurrent jobs over one shared
    flaky/latency executor."""

    def test_stress_eight_jobs_flaky_latency_executor(self):
        inner = CountingExecutor(_oracle)
        latency = LatencyExecutor(inner, 0.002)
        flaky = FlakyExecutor(latency, lambda call, inst: call % 13 == 7)
        job_instances = {
            f"job-{index}": _instances(seed=index % 4, count=30)
            for index in range(10)
        }
        budgets = {
            job_id: (8 if index % 2 == 0 else None)
            for index, job_id in enumerate(job_instances)
        }
        with DebugService(workers=6) as service:
            handles = [
                service.submit(
                    _custom_job(
                        job_id,
                        instances,
                        budget=budgets[job_id],
                        executor=flaky,
                    )
                )
                for job_id, instances in job_instances.items()
            ]
            results = {
                handle.job_id: handle.result(timeout=60) for handle in handles
            }

            assert all(r.status is JobStatus.SUCCEEDED for r in results.values())

            total_charged = 0
            for handle in handles:
                result = results[handle.job_id]
                session = handle.session
                assert session is not None
                # Budget accounting is exact per job: every charge
                # corresponds to one instance new to the job's history,
                # crashed executions were refunded.
                assert result.budget_spent == result.new_executions
                assert result.budget_spent == len(session.history.instances)
                limit = budgets[handle.job_id]
                if limit is not None:
                    assert result.budget_spent <= limit
                total_charged += result.budget_spent

            # Cross-job dedup: 10 jobs drew from 4 seed pools, so the
            # shared cache served most requests without executing.
            assert inner.calls < total_charged
            stats = service.cache.stats
            assert stats.hits + stats.coalesced > 0
            # Failed executions never poisoned the cache: successful
            # inner calls are at least the distinct cached instances.
            assert stats.executions == len(service.cache)

    def test_results_and_budgets_match_serial_baseline(self):
        """Service-run jobs report exactly what standalone sessions do."""
        seeds = [0, 0, 1, 1, 2, 2, 3, 3]
        specs = []
        for index, seed in enumerate(seeds):
            specs.append(
                JobSpec(
                    job_id=f"job-{index}",
                    executor=LatencyExecutor(_oracle, 0.001),
                    space=_space(),
                    workflow="shared",
                    algorithm=Algorithm.DECISION_TREES,
                    goal=JobGoal.FIND_ALL,
                    budget=60,
                    seed=seed,
                    ddt_config=DDTConfig(find_all=True, seed=seed),
                )
            )

        from repro.core import InstanceBudget

        baselines = {}
        for spec in specs:
            session = DebugSession(
                _oracle, _space(), budget=InstanceBudget(spec.budget)
            )
            bugdoc = BugDoc(session=session, seed=spec.seed)
            report = bugdoc.find_all(
                Algorithm.DECISION_TREES, ddt_config=spec.ddt_config
            )
            baselines[spec.job_id] = (
                sorted(str(c) for c in report.causes),
                report.instances_executed,
                session.budget.spent,
            )

        inner = CountingExecutor(_oracle)
        with DebugService(workers=8) as service:
            results = service.run_all(
                [
                    JobSpec(
                        job_id=spec.job_id,
                        executor=inner,
                        space=spec.space,
                        workflow=spec.workflow,
                        algorithm=spec.algorithm,
                        goal=spec.goal,
                        budget=spec.budget,
                        seed=spec.seed,
                        ddt_config=spec.ddt_config,
                    )
                    for spec in specs
                ],
                timeout=120,
            )

        total_charged = 0
        for result in results:
            causes, instances_executed, spent = baselines[result.job_id]
            assert result.status is JobStatus.SUCCEEDED
            assert sorted(str(c) for c in result.report.causes) == causes
            assert result.new_executions == instances_executed
            assert result.budget_spent == spent
            total_charged += result.budget_spent
        # Paired seeds ran identical searches: the cache halved (at
        # least) the real pipeline executions.
        assert inner.calls <= total_charged - total_charged // 4

    def test_cache_dedupes_identical_jobs_to_one_execution_each(self):
        inner = CountingExecutor(_oracle)
        latency = LatencyExecutor(inner, 0.005)
        instances = _instances(seed=7, count=15)
        distinct = len(set(instances))
        with DebugService(workers=8) as service:
            results = service.run_all(
                [
                    _custom_job(f"job-{index}", instances, executor=latency)
                    for index in range(8)
                ],
                timeout=60,
            )
        assert all(result.succeeded for result in results)
        # Single-flight: globally exactly one inner execution per
        # distinct instance, even though 8 jobs raced on the same list.
        assert inner.calls == distinct
        for result in results:
            assert result.budget_spent == distinct


class TestDebugService:
    def test_find_all_rejects_shortcut_algorithms(self):
        with pytest.raises(ValueError, match="FindOne"):
            JobSpec(
                job_id="bad-combo",
                executor=_oracle,
                space=_space(),
                algorithm=Algorithm.SHORTCUT,
                goal=JobGoal.FIND_ALL,
            )

    def test_duplicate_job_id_rejected(self):
        with DebugService(workers=2) as service:
            spec = _custom_job("dup", _instances(0, 3), executor=_oracle)
            service.submit(spec)
            with pytest.raises(ValueError, match="duplicate"):
                service.submit(
                    _custom_job("dup", _instances(0, 3), executor=_oracle)
                )

    def test_failed_job_is_isolated(self):
        def broken(instance):
            raise OSError("pipeline host unreachable")

        def run(session):
            return session.evaluate(Instance({"a": 1, "b": "x", "c": 0}))

        with DebugService(workers=2) as service:
            bad = service.submit(
                JobSpec(
                    job_id="bad",
                    executor=broken,
                    space=_space(),
                    workflow="broken",
                    run=run,
                )
            )
            good = service.submit(
                _custom_job("good", _instances(1, 5), executor=_oracle)
            )
            bad_result = bad.result(timeout=30)
            good_result = good.result(timeout=30)
        assert bad_result.status is JobStatus.FAILED
        assert isinstance(bad_result.error, OSError)
        assert bad_result.budget_spent == 0  # refunded on failure
        assert good_result.status is JobStatus.SUCCEEDED

    def test_admission_control_limits_concurrency(self):
        active = []
        peak = []
        lock = threading.Lock()

        def slow(instance):
            with lock:
                active.append(1)
                peak.append(len(active))
            time.sleep(0.02)
            with lock:
                active.pop()
            return _oracle(instance)

        with DebugService(workers=8, max_concurrent_jobs=2) as service:
            results = service.run_all(
                [
                    _custom_job(
                        f"job-{index}",
                        _instances(index, 4),
                        executor=slow,
                        workflow=f"w{index}",  # no cache sharing
                    )
                    for index in range(6)
                ],
                timeout=60,
            )
        assert all(result.succeeded for result in results)
        assert max(peak) <= 2

    def test_shutdown_cancels_running_jobs(self):
        """Jobs torn down by service shutdown report CANCELLED, not FAILED."""
        gate = threading.Event()

        def slow(instance):
            gate.wait(5.0)
            return _oracle(instance)

        def run(session):
            for instance in _instances(0, 5):
                session.evaluate(instance)

        service = DebugService(workers=1)
        handle = service.submit(
            JobSpec(
                job_id="torn-down",
                executor=slow,
                space=_space(),
                workflow="w",
                run=run,
            )
        )
        time.sleep(0.05)  # let the first evaluation reach the pool
        service.shutdown()
        gate.set()
        result = handle.result(timeout=30)
        assert result.status is JobStatus.CANCELLED
        assert isinstance(result.error, RuntimeError)

    def test_persistent_store_warms_next_service(self):
        store = SQLiteProvenanceStore(":memory:")
        instances = _instances(seed=3, count=12)
        first_counting = CountingExecutor(_oracle)
        with DebugService(workers=4, store=store) as service:
            service.run_all(
                [_custom_job("first", instances, executor=first_counting)],
                timeout=30,
            )
        assert first_counting.calls == len(set(instances))

        second_counting = CountingExecutor(_oracle)
        with DebugService(workers=4, store=store) as service:
            results = service.run_all(
                [_custom_job("second", instances, executor=second_counting)],
                timeout=30,
            )
        # The second service never executed the pipeline: every request
        # was served by the persistent provenance tier.
        assert second_counting.calls == 0
        assert results[0].budget_spent == len(set(instances))

    def test_worker_cap_bounds_parallel_batch_jobs(self):
        """The service-wide workers cap holds even for parallel_batches
        jobs mixing single evaluations and speculative batches."""
        active = []
        peak = []
        lock = threading.Lock()

        def slow(instance):
            with lock:
                active.append(1)
                peak.append(len(active))
            time.sleep(0.01)
            with lock:
                active.pop()
            return _oracle(instance)

        def make_run(index):
            def run(session):
                instances = _instances(seed=index, count=6)
                for instance in instances[:2]:
                    session.evaluate(instance)  # singles: routed via pool
                session.evaluate_many(instances[2:])  # batch: fans out on pool
                return None

            return run

        with DebugService(workers=2) as service:
            results = service.run_all(
                [
                    JobSpec(
                        job_id=f"job-{index}",
                        executor=slow,
                        space=_space(),
                        workflow=f"w{index}",  # no cache sharing
                        parallel_batches=True,
                        run=make_run(index),
                    )
                    for index in range(4)
                ],
                timeout=60,
            )
        assert all(result.succeeded for result in results)
        assert max(peak) <= 2

    def test_job_history_warms_shared_cache(self):
        """One job's prior provenance saves every other job's executions."""
        from repro.core import ExecutionHistory

        counting = CountingExecutor(_oracle)
        instances = _instances(seed=11, count=10)
        history = ExecutionHistory.from_pairs(
            [(instance, _oracle(instance)) for instance in set(instances)]
        )
        with DebugService(workers=4) as service:
            seeded = service.submit(
                JobSpec(
                    job_id="seeded",
                    executor=counting,
                    space=_space(),
                    workflow="w",
                    history=history,
                    run=lambda session: None,
                )
            )
            assert seeded.result(timeout=30).succeeded
            other = service.run_all(
                [_custom_job("other", instances, executor=counting, workflow="w")],
                timeout=30,
            )[0]
        # The second job never ran the pipeline: the warmed shared
        # cache served everything, yet its own budget was still charged
        # (instances new to *its* history).
        assert counting.calls == 0
        assert other.budget_spent == len(set(instances))

    def test_parallel_batches_job_uses_shared_pool(self):
        spec = JobSpec(
            job_id="batchy",
            executor=_oracle,
            space=_space(),
            workflow="w",
            algorithm=Algorithm.DECISION_TREES,
            goal=JobGoal.FIND_ALL,
            seed=0,
            parallel_batches=True,
        )
        with DebugService(workers=4) as service:
            result = service.run_all([spec], timeout=60)[0]
            assert result.status is JobStatus.SUCCEEDED
            assert result.report is not None
            assert any(
                "a = 0" == str(cause) for cause in result.report.causes
            )
            assert service.scheduler.stats.dispatched > 0


class TestCancellation:
    def test_cancel_mid_run_yields_cancelled_status_and_refunds(self):
        space = _space()
        started = threading.Event()

        def slow_oracle(instance):
            started.set()
            time.sleep(0.03)
            return _oracle(instance)

        with DebugService(workers=2) as service:
            handle = service.submit(
                JobSpec(
                    job_id="doomed",
                    executor=slow_oracle,
                    space=space,
                    budget=500,
                )
            )
            assert started.wait(10)
            time.sleep(0.1)
            assert service.cancel("doomed") is True
            result = handle.result(timeout=30)
        assert result.status is JobStatus.CANCELLED
        assert isinstance(result.error, JobCancelled)
        # The aborted slice was refunded: only completed executions are
        # charged, so spend equals the session's completed new runs.
        assert result.budget_spent == result.new_executions
        assert result.budget_spent < 500

    def test_cancel_queued_job_never_executes(self):
        space = _space()
        release = threading.Event()

        def gated_oracle(instance):
            release.wait(10)
            return _oracle(instance)

        with DebugService(workers=1, max_concurrent_jobs=1) as service:
            blocker = service.submit(
                JobSpec(
                    job_id="blocker", executor=gated_oracle, space=space, budget=3
                )
            )
            queued = service.submit(
                JobSpec(
                    job_id="queued", executor=gated_oracle, space=space, budget=3
                )
            )
            assert service.cancel("queued") is True
            release.set()
            queued_result = queued.result(timeout=30)
            blocker_result = blocker.result(timeout=30)
        assert queued_result.status is JobStatus.CANCELLED
        assert queued_result.new_executions == 0
        assert queued_result.budget_spent == 0
        assert blocker_result.status is not JobStatus.CANCELLED

    def test_cancel_after_completion_returns_false(self):
        with DebugService(workers=2) as service:
            handle = service.submit(
                JobSpec(job_id="fast", executor=_oracle, space=_space(), budget=40)
            )
            result = handle.result(timeout=30)
            assert result.status is JobStatus.SUCCEEDED
            assert service.cancel("fast") is False
            assert handle.result(timeout=1).status is JobStatus.SUCCEEDED

    def test_cancel_unknown_job_raises(self):
        with DebugService(workers=1) as service:
            with pytest.raises(KeyError):
                service.cancel("nobody")

    def test_parallel_batches_job_cancels_cleanly(self):
        space = _space()
        started = threading.Event()

        def slow_oracle(instance):
            started.set()
            time.sleep(0.02)
            return _oracle(instance)

        with DebugService(workers=3) as service:
            handle = service.submit(
                JobSpec(
                    job_id="batchy-cancel",
                    executor=slow_oracle,
                    space=space,
                    algorithm=Algorithm.DECISION_TREES,
                    goal=JobGoal.FIND_ALL,
                    budget=500,
                    parallel_batches=True,
                )
            )
            assert started.wait(10)
            time.sleep(0.08)
            service.cancel("batchy-cancel")
            result = handle.result(timeout=30)
        assert result.status is JobStatus.CANCELLED
        assert result.budget_spent == result.new_executions

    def test_custom_run_body_can_poll_cancellation(self):
        ticks = []
        handle_ready = threading.Event()
        holder = {}

        def body(session):
            assert handle_ready.wait(10)
            handle = holder["handle"]
            while True:
                ticks.append(None)
                handle.check_cancelled()
                time.sleep(0.01)

        with DebugService(workers=1) as service:
            spec = JobSpec(
                job_id="poller", executor=_oracle, space=_space(), run=body
            )
            handle = service.submit(spec)
            holder["handle"] = handle
            handle_ready.set()
            time.sleep(0.1)
            service.cancel("poller")
            result = handle.result(timeout=30)
        assert result.status is JobStatus.CANCELLED
        assert ticks


class TestPriorities:
    def test_jobspec_rejects_non_positive_priority(self):
        with pytest.raises(ValueError, match="priority"):
            JobSpec(job_id="p", executor=_oracle, space=_space(), priority=0)

    def test_weighted_fairness_serves_heavier_job_more_per_turn(self):
        order = []
        lock = threading.Lock()

        def make(tag):
            def thunk():
                with lock:
                    order.append(tag)

            return thunk

        gate = threading.Event()
        with SharedScheduler(workers=1, weighted_fairness=True) as scheduler:
            scheduler.submit("warm", gate.wait)
            scheduler.set_priority("heavy", 3)
            requests = []
            for __ in range(6):
                requests.append(scheduler.submit("heavy", make("H")))
                requests.append(scheduler.submit("light", make("L")))
            gate.set()
            for request in requests:
                request.result()
        # The first fairness turn serves three consecutive heavy
        # requests before the light job gets its slice.
        assert "".join(order).startswith("HHHL")
        assert order.count("H") == order.count("L") == 6

    def test_unweighted_scheduler_ignores_priorities(self):
        order = []
        lock = threading.Lock()

        def make(tag):
            def thunk():
                with lock:
                    order.append(tag)

            return thunk

        gate = threading.Event()
        with SharedScheduler(workers=1) as scheduler:
            scheduler.submit("warm", gate.wait)
            scheduler.set_priority("heavy", 5)
            requests = []
            for __ in range(4):
                requests.append(scheduler.submit("heavy", make("H")))
                requests.append(scheduler.submit("light", make("L")))
            gate.set()
            for request in requests:
                request.result()
        assert "".join(order) == "HLHLHLHL"  # exactly the historical FIFO

    def test_all_weight_one_matches_fifo_round_robin(self):
        order = []
        lock = threading.Lock()

        def make(tag):
            def thunk():
                with lock:
                    order.append(tag)

            return thunk

        gate = threading.Event()
        with SharedScheduler(workers=1, weighted_fairness=True) as scheduler:
            scheduler.submit("warm", gate.wait)
            requests = []
            for __ in range(4):
                requests.append(scheduler.submit("A", make("A")))
                requests.append(scheduler.submit("B", make("B")))
            gate.set()
            for request in requests:
                request.result()
        assert "".join(order) == "ABABABAB"

    def test_service_runs_prioritized_jobs_to_completion(self):
        specs = [
            JobSpec(
                job_id=f"job-{index}",
                executor=_oracle,
                space=_space(),
                workflow="w",
                budget=30,
                priority=3 if index == 0 else 1,
            )
            for index in range(3)
        ]
        with DebugService(workers=2, weighted_fairness=True) as service:
            results = service.run_all(specs, timeout=60)
        assert all(r.status is JobStatus.SUCCEEDED for r in results)
        # Identical specs produce identical per-job reports regardless
        # of dispatch weighting (serial sessions are deterministic).
        causes = [[str(c) for c in r.report.causes] for r in results]
        assert causes[0] == causes[1] == causes[2]


class TestSubmitShutdownRace:
    def test_submit_racing_shutdown_never_leaks_a_job(self):
        """Hammer submit against shutdown: every submission either raises
        the shutdown RuntimeError or yields a handle that reaches a
        terminal state -- no job may be accepted-then-stranded (the old
        code published the submitted event and started the controller
        after releasing the lock, so a concurrent shutdown could drain
        the event bus and strand the handle forever PENDING)."""
        for round_index in range(10):
            service = DebugService(workers=2)
            barrier = threading.Barrier(3)
            handles = []
            errors = []
            lock = threading.Lock()

            def submit_many(offset):
                barrier.wait()
                for index in range(8):
                    spec = JobSpec(
                        job_id=f"r{round_index}-s{offset}-{index}",
                        executor=_oracle,
                        space=_space(),
                        workflow="race",
                        budget=10,
                    )
                    try:
                        handle = service.submit(spec)
                    except RuntimeError:
                        return  # shutdown won the race; acceptable
                    with lock:
                        handles.append(handle)

            def shut_down():
                barrier.wait()
                time.sleep(0.0005 * round_index)
                service.shutdown()

            threads = [
                threading.Thread(target=submit_many, args=(0,)),
                threading.Thread(target=submit_many, args=(1,)),
                threading.Thread(target=shut_down),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(30.0)
                assert not thread.is_alive()
            # Every accepted handle must reach a terminal state: either
            # it ran to completion before shutdown or the teardown
            # cancelled it -- never a forever-PENDING orphan.
            for handle in handles:
                result = handle.result(timeout=30)
                assert result.status in (
                    JobStatus.SUCCEEDED,
                    JobStatus.FAILED,
                    JobStatus.CANCELLED,
                )


class TestRunAllBatchTimeout:
    def test_timeout_names_all_unfinished_jobs_and_keeps_partials(self):
        """A mid-batch timeout must (a) name every unfinished job -- not
        just the one whose result() call tripped -- and (b) leave the
        finished partial results retrievable via service.jobs."""
        release = threading.Event()

        def gated(instance):
            release.wait(30.0)
            return _oracle(instance)

        specs = [
            _custom_job("fast", _instances(1, 3), executor=_oracle),
            _custom_job(
                "slow-a", _instances(2, 3), executor=gated, workflow="wa"
            ),
            _custom_job(
                "slow-b", _instances(3, 3), executor=gated, workflow="wb"
            ),
        ]
        service = DebugService(workers=4)
        try:
            with pytest.raises(TimeoutError) as excinfo:
                service.run_all(specs, timeout=0.8)
            message = str(excinfo.value)
            # The deadline sweep visits every handle, so both stragglers
            # are reported -- the old code raised on the first pending
            # handle and never looked at the rest of the batch.
            assert "slow-a" in message
            assert "slow-b" in message
            assert "fast" not in message
            # The finished job's result is retrievable immediately...
            fast = service.jobs["fast"].result(timeout=5)
            assert fast.status is JobStatus.SUCCEEDED
            # ...and the stragglers keep running to completion.
            release.set()
            for job_id in ("slow-a", "slow-b"):
                result = service.jobs[job_id].result(timeout=30)
                assert result.status is JobStatus.SUCCEEDED
        finally:
            release.set()
            service.shutdown()

    def test_run_all_returns_submission_order_after_stragglers(self):
        """Out-of-order completion must not reorder run_all results."""
        first_gate = threading.Event()

        def gated_first(instance):
            first_gate.wait(10.0)
            return _oracle(instance)

        def release_then_run(session):
            # The last-submitted job unblocks the first, so completion
            # order is roughly reversed submission order.
            first_gate.set()
            for instance in _instances(9, 2):
                session.evaluate(instance)
            return 2

        specs = [
            _custom_job("g0", _instances(5, 2), executor=gated_first),
            _custom_job("g1", _instances(6, 2), executor=_oracle),
            JobSpec(
                job_id="g2",
                executor=_oracle,
                space=_space(),
                workflow="shared",
                run=release_then_run,
            ),
        ]
        with DebugService(workers=4) as service:
            results = service.run_all(specs, timeout=30)
        assert [r.job_id for r in results] == ["g0", "g1", "g2"]
        assert all(r.status is JobStatus.SUCCEEDED for r in results)
