"""Tests for the workflow engine (repro.pipeline.module / .workflow /
.evaluation)."""

from __future__ import annotations

import pytest

from repro.core import Instance, Outcome, Parameter, ParameterSpace
from repro.pipeline import (
    CycleError,
    Module,
    ModuleError,
    Workflow,
    WorkflowExecutor,
    predicate_evaluation,
    threshold_evaluation,
)


def _space():
    return ParameterSpace([Parameter("x", (1, 2, 3)), Parameter("y", ("a", "b"))])


class TestModule:
    def test_single_output_normalization(self):
        module = Module("m", lambda: 42)
        assert module.run({}, {}) == {"out": 42}

    def test_parameters_are_passed(self):
        module = Module("m", lambda x: x * 2, parameters=("x",))
        assert module.run({}, {"x": 3}) == {"out": 6}

    def test_inputs_are_passed(self):
        module = Module("m", lambda v: v + 1, inputs=("v",))
        assert module.run({"v": 1}, {}) == {"out": 2}

    def test_missing_input_raises_module_error(self):
        module = Module("m", lambda v: v, inputs=("v",))
        with pytest.raises(ModuleError, match="missing input"):
            module.run({}, {})

    def test_missing_parameter_raises_module_error(self):
        module = Module("m", lambda x: x, parameters=("x",))
        with pytest.raises(ModuleError, match="missing parameter"):
            module.run({}, {})

    def test_crash_is_wrapped(self):
        def boom():
            raise ZeroDivisionError("crash")

        module = Module("m", boom)
        with pytest.raises(ModuleError, match="crash"):
            module.run({}, {})

    def test_multi_output_requires_mapping(self):
        module = Module("m", lambda: 1, outputs=("p", "q"))
        with pytest.raises(ModuleError, match="must return a mapping"):
            module.run({}, {})

    def test_multi_output_missing_port(self):
        module = Module("m", lambda: {"p": 1}, outputs=("p", "q"))
        with pytest.raises(ModuleError, match="missing output ports"):
            module.run({}, {})

    def test_duplicate_ports_rejected(self):
        with pytest.raises(ValueError, match="duplicate input ports"):
            Module("m", lambda: 0, inputs=("v", "v"))

    def test_no_outputs_rejected(self):
        with pytest.raises(ValueError, match="output port"):
            Module("m", lambda: 0, outputs=())


class TestWorkflow:
    def _linear(self):
        space = _space()
        workflow = Workflow("linear", space)
        workflow.add_module(Module("gen", lambda x: x * 10, parameters=("x",)))
        workflow.add_module(
            Module("fmt", lambda v, y: f"{v}{y}", inputs=("v",), parameters=("y",))
        )
        workflow.connect("gen", "out", "fmt", "v")
        return workflow

    def test_execute_linear(self):
        result = self._linear().execute(Instance({"x": 2, "y": "b"}))
        assert result.sink_value == "20b"
        assert result.trace == ("gen", "fmt")

    def test_duplicate_module_rejected(self):
        workflow = Workflow("w", _space())
        workflow.add_module(Module("m", lambda: 0))
        with pytest.raises(ValueError, match="duplicate module"):
            workflow.add_module(Module("m", lambda: 0))

    def test_unknown_parameter_rejected(self):
        workflow = Workflow("w", _space())
        with pytest.raises(ValueError, match="outside the workflow space"):
            workflow.add_module(Module("m", lambda zzz: zzz, parameters=("zzz",)))

    def test_connect_validates_ports(self):
        workflow = Workflow("w", _space())
        workflow.add_module(Module("a", lambda: 0))
        workflow.add_module(Module("b", lambda v: v, inputs=("v",)))
        with pytest.raises(ValueError, match="no output port"):
            workflow.connect("a", "zzz", "b", "v")
        with pytest.raises(ValueError, match="no input port"):
            workflow.connect("a", "out", "b", "zzz")
        workflow.connect("a", "out", "b", "v")
        with pytest.raises(ValueError, match="already has a connection"):
            workflow.connect("a", "out", "b", "v")

    def test_cycle_detection(self):
        space = _space()
        workflow = Workflow("cyclic", space)
        workflow.add_module(Module("a", lambda v: v, inputs=("v",)))
        workflow.add_module(Module("b", lambda v: v, inputs=("v",)))
        workflow.connect("a", "out", "b", "v")
        workflow.connect("b", "out", "a", "v")
        with pytest.raises(CycleError):
            workflow.topological_order()

    def test_unwired_input_rejected_at_validate(self):
        workflow = Workflow("w", _space())
        workflow.add_module(Module("b", lambda v: v, inputs=("v",)))
        with pytest.raises(ValueError, match="not connected"):
            workflow.validate()

    def test_instance_validated_against_space(self):
        workflow = self._linear()
        with pytest.raises(ValueError, match="out of domain"):
            workflow.execute(Instance({"x": 99, "y": "a"}))

    def test_diamond_dataflow(self):
        space = _space()
        workflow = Workflow("diamond", space, sink=("join", "out"))
        workflow.add_module(Module("src", lambda x: x, parameters=("x",)))
        workflow.add_module(Module("left", lambda v: v + 1, inputs=("v",)))
        workflow.add_module(Module("right", lambda v: v * 10, inputs=("v",)))
        workflow.add_module(
            Module("join", lambda l, r: l + r, inputs=("l", "r"))
        )
        workflow.connect("src", "out", "left", "v")
        workflow.connect("src", "out", "right", "v")
        workflow.connect("left", "out", "join", "l")
        workflow.connect("right", "out", "join", "r")
        result = workflow.execute(Instance({"x": 3, "y": "a"}))
        assert result.sink_value == (3 + 1) + (3 * 10)


class TestEvaluation:
    def test_threshold(self):
        evaluate = threshold_evaluation(0.6)
        assert evaluate(0.6) is Outcome.SUCCEED
        assert evaluate(0.59) is Outcome.FAIL

    def test_threshold_with_key(self):
        evaluate = threshold_evaluation(10.0, key=lambda r: r["score"])
        assert evaluate({"score": 12.0}) is Outcome.SUCCEED

    def test_predicate(self):
        evaluate = predicate_evaluation(lambda r: r == "ok")
        assert evaluate("ok") is Outcome.SUCCEED
        assert evaluate("bad") is Outcome.FAIL


class TestWorkflowExecutor:
    def _crashy_workflow(self):
        space = _space()
        workflow = Workflow("crashy", space)

        def maybe_crash(x):
            if x == 3:
                raise RuntimeError("boom")
            return x

        workflow.add_module(Module("m", maybe_crash, parameters=("x",)))
        return workflow

    def test_crash_is_fail(self):
        executor = WorkflowExecutor(
            self._crashy_workflow(), predicate_evaluation(lambda r: True)
        )
        assert executor(Instance({"x": 3, "y": "a"})) is Outcome.FAIL
        assert executor(Instance({"x": 1, "y": "a"})) is Outcome.SUCCEED

    def test_crash_reraised_when_configured(self):
        executor = WorkflowExecutor(
            self._crashy_workflow(),
            predicate_evaluation(lambda r: True),
            crash_is_fail=False,
        )
        with pytest.raises(ModuleError):
            executor(Instance({"x": 3, "y": "a"}))

    def test_last_result_recorded(self):
        executor = WorkflowExecutor(
            self._crashy_workflow(), threshold_evaluation(2.0)
        )
        executor(Instance({"x": 2, "y": "a"}))
        assert executor.last_result == 2
        assert executor.executions == 1
