"""Unit + property tests for the root-cause language (repro.core.predicates)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Comparator,
    Conjunction,
    Disjunction,
    Instance,
    Parameter,
    ParameterKind,
    ParameterSpace,
    Predicate,
    conjunction_from_assignment,
)
from repro.core.predicates import canonical_value_sets


class TestComparator:
    @pytest.mark.parametrize(
        "comparator,observed,reference,expected",
        [
            (Comparator.EQ, 5, 5, True),
            (Comparator.EQ, 5, 6, False),
            (Comparator.NEQ, 5, 6, True),
            (Comparator.NEQ, 5, 5, False),
            (Comparator.LE, 5, 5, True),
            (Comparator.LE, 6, 5, False),
            (Comparator.GT, 6, 5, True),
            (Comparator.GT, 5, 5, False),
        ],
    )
    def test_evaluate(self, comparator, observed, reference, expected):
        assert comparator.evaluate(observed, reference) is expected

    @pytest.mark.parametrize(
        "comparator,negation",
        [
            (Comparator.EQ, Comparator.NEQ),
            (Comparator.NEQ, Comparator.EQ),
            (Comparator.LE, Comparator.GT),
            (Comparator.GT, Comparator.LE),
        ],
    )
    def test_negate_is_involution(self, comparator, negation):
        assert comparator.negate() is negation
        assert comparator.negate().negate() is comparator

    def test_ordinal_only(self):
        assert Comparator.LE.is_ordinal_only
        assert Comparator.GT.is_ordinal_only
        assert not Comparator.EQ.is_ordinal_only
        assert not Comparator.NEQ.is_ordinal_only


class TestPredicate:
    def test_satisfied_by(self):
        predicate = Predicate("a", Comparator.GT, 2)
        assert predicate.satisfied_by(Instance({"a": 3}))
        assert not predicate.satisfied_by(Instance({"a": 2}))

    def test_satisfying_values(self):
        parameter = Parameter("a", (0, 1, 2, 3), ParameterKind.ORDINAL)
        predicate = Predicate("a", Comparator.LE, 1)
        assert predicate.satisfying_values(parameter) == frozenset({0, 1})

    def test_satisfying_values_wrong_parameter(self):
        parameter = Parameter("b", (0, 1))
        with pytest.raises(ValueError, match="evaluated against"):
            Predicate("a", Comparator.EQ, 0).satisfying_values(parameter)

    def test_negated_complements_satisfying_set(self, mixed_space):
        parameter = mixed_space["a"]
        predicate = Predicate("a", Comparator.LE, 2)
        full = frozenset(parameter.domain)
        assert (
            predicate.satisfying_values(parameter)
            | predicate.negated().satisfying_values(parameter)
        ) == full
        assert not (
            predicate.satisfying_values(parameter)
            & predicate.negated().satisfying_values(parameter)
        )

    def test_str(self):
        assert str(Predicate("a", Comparator.GT, 5)) == "a > 5"


class TestConjunction:
    def test_empty_is_trivial_and_always_satisfied(self):
        conjunction = Conjunction()
        assert conjunction.is_trivial()
        assert conjunction.satisfied_by(Instance({"a": 1}))
        assert str(conjunction) == "TRUE"

    def test_satisfied_requires_all_predicates(self, mixed_space):
        conjunction = Conjunction(
            [
                Predicate("a", Comparator.GT, 2),
                Predicate("b", Comparator.EQ, "y"),
            ]
        )
        assert conjunction.satisfied_by(Instance({"a": 3, "b": "y", "c": 0.0}))
        assert not conjunction.satisfied_by(Instance({"a": 3, "b": "x", "c": 0.0}))
        assert not conjunction.satisfied_by(Instance({"a": 1, "b": "y", "c": 0.0}))

    def test_equality_is_order_free(self):
        p1 = Predicate("a", Comparator.EQ, 1)
        p2 = Predicate("b", Comparator.EQ, 2)
        assert Conjunction([p1, p2]) == Conjunction([p2, p1])
        assert hash(Conjunction([p1, p2])) == hash(Conjunction([p2, p1]))

    def test_canonical_drops_unconstraining_predicates(self, mixed_space):
        # "a <= 4" is the whole ordinal domain: no constraint.
        conjunction = Conjunction([Predicate("a", Comparator.LE, 4)])
        assert conjunction.canonical(mixed_space) == {}

    def test_canonical_intersects_same_parameter(self, mixed_space):
        conjunction = Conjunction(
            [
                Predicate("a", Comparator.GT, 0),
                Predicate("a", Comparator.LE, 2),
            ]
        )
        assert conjunction.canonical(mixed_space) == {"a": frozenset({1, 2})}

    def test_ordinal_comparator_on_categorical_rejected(self, mixed_space):
        conjunction = Conjunction([Predicate("b", Comparator.LE, "y")])
        with pytest.raises(ValueError, match="requires ordinal"):
            conjunction.canonical(mixed_space)

    def test_unknown_parameter_rejected(self, mixed_space):
        conjunction = Conjunction([Predicate("zzz", Comparator.EQ, 1)])
        with pytest.raises(ValueError, match="unknown parameter"):
            conjunction.canonical(mixed_space)

    def test_satisfiability(self, mixed_space):
        satisfiable = Conjunction([Predicate("a", Comparator.EQ, 1)])
        unsatisfiable = Conjunction(
            [
                Predicate("a", Comparator.LE, 0),
                Predicate("a", Comparator.GT, 0),
            ]
        )
        assert satisfiable.is_satisfiable(mixed_space)
        assert not unsatisfiable.is_satisfiable(mixed_space)

    def test_satisfying_count(self, mixed_space):
        conjunction = Conjunction(
            [
                Predicate("a", Comparator.LE, 1),  # {0, 1}
                Predicate("b", Comparator.NEQ, "z"),  # {x, y}
            ]
        )
        assert conjunction.satisfying_count(mixed_space) == 2 * 2 * 4

    def test_semantic_equality_across_syntax(self, mixed_space):
        # a <= 0 and a = 0 denote the same set over domain {0..4}.
        le = Conjunction([Predicate("a", Comparator.LE, 0)])
        eq = Conjunction([Predicate("a", Comparator.EQ, 0)])
        assert le.semantically_equals(eq, mixed_space)

    def test_subsumes(self, mixed_space):
        general = Conjunction([Predicate("b", Comparator.EQ, "y")])
        specific = Conjunction(
            [
                Predicate("b", Comparator.EQ, "y"),
                Predicate("a", Comparator.EQ, 1),
            ]
        )
        assert general.subsumes(specific, mixed_space)
        assert not specific.subsumes(general, mixed_space)
        assert general.subsumes(general, mixed_space)

    def test_sample_satisfying(self, mixed_space):
        conjunction = Conjunction(
            [
                Predicate("a", Comparator.GT, 2),
                Predicate("b", Comparator.EQ, "z"),
            ]
        )
        rng = random.Random(0)
        for __ in range(20):
            instance = conjunction.sample_satisfying(mixed_space, rng)
            assert instance is not None
            assert conjunction.satisfied_by(instance)
            mixed_space.validate(instance)

    def test_sample_unsatisfiable_returns_none(self, mixed_space):
        conjunction = Conjunction(
            [
                Predicate("a", Comparator.LE, 0),
                Predicate("a", Comparator.GT, 3),
            ]
        )
        assert conjunction.sample_satisfying(mixed_space, random.Random(0)) is None

    def test_restricted_to(self):
        conjunction = Conjunction(
            [
                Predicate("a", Comparator.EQ, 1),
                Predicate("b", Comparator.EQ, 2),
            ]
        )
        restricted = conjunction.restricted_to(["a"])
        assert restricted.parameters == frozenset({"a"})


class TestDisjunction:
    def test_empty_is_false(self):
        disjunction = Disjunction()
        assert not disjunction.satisfied_by(Instance({"a": 1}))
        assert str(disjunction) == "FALSE"

    def test_satisfied_by_any_member(self, mixed_space):
        disjunction = Disjunction(
            [
                Conjunction([Predicate("a", Comparator.EQ, 0)]),
                Conjunction([Predicate("b", Comparator.EQ, "z")]),
            ]
        )
        assert disjunction.satisfied_by(Instance({"a": 0, "b": "x", "c": 0.0}))
        assert disjunction.satisfied_by(Instance({"a": 4, "b": "z", "c": 0.0}))
        assert not disjunction.satisfied_by(Instance({"a": 4, "b": "x", "c": 0.0}))

    def test_deduplicates_members(self):
        conjunction = Conjunction([Predicate("a", Comparator.EQ, 0)])
        assert len(Disjunction([conjunction, conjunction])) == 1

    def test_semantic_equality_small_space(self, mixed_space):
        # (a <= 1) or (a > 1)  ==  TRUE-for-a, i.e. (b = anything): compare
        # against the full-cover via NEQ pair.
        left = Disjunction(
            [
                Conjunction([Predicate("a", Comparator.LE, 1)]),
                Conjunction([Predicate("a", Comparator.GT, 1)]),
            ]
        )
        right = Disjunction([Conjunction()])
        assert left.semantically_equals(right, mixed_space)


class TestHelpers:
    def test_conjunction_from_assignment(self):
        conjunction = conjunction_from_assignment({"a": 1, "b": "x"})
        assert len(conjunction) == 2
        assert conjunction.satisfied_by(Instance({"a": 1, "b": "x"}))
        assert not conjunction.satisfied_by(Instance({"a": 1, "b": "y"}))

    def test_conjunction_from_assignment_with_subset(self):
        conjunction = conjunction_from_assignment({"a": 1, "b": "x"}, ["a"])
        assert conjunction.parameters == frozenset({"a"})

    def test_canonical_value_sets_standalone(self, mixed_space):
        sets = canonical_value_sets(
            [Predicate("a", Comparator.GT, 2)], mixed_space
        )
        assert sets == {"a": frozenset({3, 4})}


# -- Property-based: canonical form is a sound semantics ---------------------

_ORD = Parameter("o", (0, 1, 2, 3, 4, 5), ParameterKind.ORDINAL)
_CAT = Parameter("k", ("r", "g", "b"))
_SPACE = ParameterSpace([_ORD, _CAT])


def _predicates():
    ordinal = st.builds(
        Predicate,
        st.just("o"),
        st.sampled_from(list(Comparator)),
        st.sampled_from(_ORD.domain),
    )
    categorical = st.builds(
        Predicate,
        st.just("k"),
        st.sampled_from([Comparator.EQ, Comparator.NEQ]),
        st.sampled_from(_CAT.domain),
    )
    return st.one_of(ordinal, categorical)


@settings(max_examples=150, deadline=None)
@given(st.lists(_predicates(), min_size=0, max_size=4))
def test_canonical_matches_pointwise_semantics(predicates):
    """For every instance: satisfied_by == membership in canonical sets."""
    conjunction = Conjunction(predicates)
    sets = conjunction.canonical(_SPACE)
    for instance in _SPACE.instances():
        expected = all(p.satisfied_by(instance) for p in predicates)
        via_canonical = all(
            instance[name] in values for name, values in sets.items()
        )
        assert expected == via_canonical


@settings(max_examples=100, deadline=None)
@given(
    st.lists(_predicates(), min_size=1, max_size=3),
    st.lists(_predicates(), min_size=1, max_size=3),
)
def test_subsumption_agrees_with_enumeration(left_predicates, right_predicates):
    """subsumes() must equal satisfying-set containment."""
    left = Conjunction(left_predicates)
    right = Conjunction(right_predicates)
    left_set = {i for i in _SPACE.instances() if left.satisfied_by(i)}
    right_set = {i for i in _SPACE.instances() if right.satisfied_by(i)}
    assert left.subsumes(right, _SPACE) == (right_set <= left_set)
