"""Differential tests for the batch evaluation layer.

The contract of the batch layer (PR 4) is threefold:

1. **Batch == one-at-a-time == reference.**  ``refutes_many`` /
   ``supports_many`` / ``subsumes_matrix`` / ``rows_matching_many``
   return exactly what per-conjunction engine calls return, which in
   turn return exactly what the dict-based reference implementations
   return -- over arbitrary histories and conjunction batches,
   including duplicate, contradictory (unsatisfiable), and
   out-of-domain conjunctions.
2. **Fallbacks are visible.**  Every query a degraded or uncompilable
   input pushes onto the reference path increments
   ``ColumnarEngine.fallbacks``; a clean columnar run ends with the
   counter at zero.  End-to-end reports are byte-identical either way.
3. **Caches are coherent.**  The compiled-conjunction memo is
   history-independent and never recompiles; the per-literal match
   tables survive history growth by *incremental extension* (each
   appended row's bit is OR-ed into the entries whose mask contains its
   code), staying exactly equal to a from-scratch recomputation.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Algorithm,
    BugDoc,
    Comparator,
    Conjunction,
    DDTConfig,
    DebugSession,
    ExecutionHistory,
    Instance,
    Outcome,
    Parameter,
    ParameterKind,
    ParameterSpace,
    Predicate,
    StrategyContext,
)
from repro.core.engine import (
    ColumnarEngine,
    SpaceCodec,
    compile_conjunction,
    compile_many,
)


# ---------------------------------------------------------------------------
# Random-model strategies (mirrors tests/test_engine.py)
# ---------------------------------------------------------------------------

def _space_from_blueprint(blueprint: list[tuple[bool, int]]) -> ParameterSpace:
    parameters = []
    for index, (ordinal, n_values) in enumerate(blueprint):
        if ordinal:
            domain = tuple(float(v) for v in range(n_values))
            parameters.append(
                Parameter(f"p{index}", domain, ParameterKind.ORDINAL)
            )
        else:
            domain = tuple(f"v{j}" for j in range(n_values))
            parameters.append(Parameter(f"p{index}", domain))
    return ParameterSpace(parameters)


_spaces = st.lists(
    st.tuples(st.booleans(), st.integers(2, 5)), min_size=2, max_size=4
).map(_space_from_blueprint)


def _random_history(space, rng, size):
    history = ExecutionHistory()
    for __ in range(size):
        instance = space.random_instance(rng)
        if instance not in history:
            history.record(
                instance,
                Outcome.FAIL if rng.random() < 0.4 else Outcome.SUCCEED,
            )
    return history


def _random_batch(space, rng, size):
    """A conjunction batch exercising the tricky shapes: plain random
    conjunctions, exact duplicates, contradictory (unsatisfiable)
    conjunctions, and predicates with out-of-domain values."""
    batch: list[Conjunction] = []
    for __ in range(size):
        shape = rng.random()
        name = rng.choice(space.names)
        parameter = space[name]
        if shape < 0.15 and batch:
            batch.append(rng.choice(batch))  # duplicate of an earlier one
            continue
        if shape < 0.3 and len(parameter.domain) >= 2:
            # Contradictory: two different equality pins on one parameter.
            batch.append(
                Conjunction(
                    [
                        Predicate(name, Comparator.EQ, parameter.domain[0]),
                        Predicate(name, Comparator.EQ, parameter.domain[1]),
                    ]
                )
            )
            continue
        predicates = []
        for __ in range(rng.randint(1, 3)):
            pick = rng.choice(space.names)
            chosen = space[pick]
            comparators = (
                list(Comparator)
                if chosen.is_ordinal
                else [Comparator.EQ, Comparator.NEQ]
            )
            if chosen.is_ordinal and rng.random() < 0.2:
                value = 1e9  # out-of-domain value, still comparable
            else:
                value = rng.choice(chosen.domain)
            predicates.append(Predicate(pick, rng.choice(comparators), value))
        batch.append(Conjunction(predicates))
    return batch


# ---------------------------------------------------------------------------
# Batch == scalar == reference
# ---------------------------------------------------------------------------

class TestBatchDifferential:
    @settings(max_examples=50, deadline=None)
    @given(_spaces, st.integers(0, 2**32))
    def test_refutes_supports_many_match_scalar_and_reference(self, space, seed):
        rng = random.Random(seed)
        history = _random_history(space, rng, size=rng.randint(0, 25))
        batch = _random_batch(space, rng, size=rng.randint(0, 12))
        engine = ColumnarEngine(space, history)
        scalar = ColumnarEngine(space, history, use_match_cache=False)
        assert engine.refutes_many(batch) == [
            scalar.refutes(c) for c in batch
        ] == [history.refutes(c) for c in batch]
        assert engine.supports_many(batch) == [
            scalar.supports(c) for c in batch
        ] == [history.supports(c) for c in batch]

    @settings(max_examples=40, deadline=None)
    @given(_spaces, st.integers(0, 2**32))
    def test_subsumes_matrix_matches_scalar_and_reference(self, space, seed):
        rng = random.Random(seed)
        generals = _random_batch(space, rng, size=rng.randint(1, 6))
        specifics = _random_batch(space, rng, size=rng.randint(1, 6))
        engine = ColumnarEngine(space, ExecutionHistory())
        matrix = engine.subsumes_matrix(generals, specifics)
        for i, general in enumerate(generals):
            for j, specific in enumerate(specifics):
                assert matrix[i][j] == engine.subsumes(general, specific)
                assert matrix[i][j] == general.subsumes(specific, space)

    @settings(max_examples=40, deadline=None)
    @given(_spaces, st.integers(0, 2**32))
    def test_rows_matching_many_matches_scalar(self, space, seed):
        rng = random.Random(seed)
        history = _random_history(space, rng, size=rng.randint(1, 20))
        batch = _random_batch(space, rng, size=rng.randint(1, 10))
        codec = SpaceCodec(space)
        store = history.columnar_store(space)
        compiled_batch = compile_many(batch, codec)
        assert compiled_batch == [
            compile_conjunction(c, codec) for c in batch
        ]
        for within in (store.all_mask, store.fail_mask, store.succeed_mask):
            many = store.rows_matching_many(compiled_batch, within)
            for compiled, rows in zip(compiled_batch, many):
                if compiled is None:
                    assert rows is None
                else:
                    assert rows == store.rows_matching(compiled, within)

    @settings(max_examples=30, deadline=None)
    @given(_spaces, st.integers(0, 2**32))
    def test_context_batch_helpers_match_nonbatch(self, space, seed):
        rng = random.Random(seed)
        history = _random_history(space, rng, size=rng.randint(1, 20))

        def oracle(instance):
            return Outcome.SUCCEED

        batched = StrategyContext(
            DebugSession(oracle, space, history=history.copy()), batch=True
        )
        scalar = StrategyContext(
            DebugSession(oracle, space, history=history.copy()), batch=False
        )
        reference = StrategyContext(
            DebugSession(oracle, space, history=history.copy()),
            engine="reference",
        )
        batch = _random_batch(space, rng, size=rng.randint(1, 8))
        for context in (scalar, reference):
            assert batched.refutes_many(batch) == context.refutes_many(batch)
            assert batched.supports_many(batch) == context.supports_many(batch)
            assert batched.subsumes_matrix(batch, batch) == context.subsumes_matrix(
                batch, batch
            )
            assert batched.filter_unsubsumed(batch[:2], batch) == (
                context.filter_unsubsumed(batch[:2], batch)
            )
            assert batched.prune_to_minimal(batch) == context.prune_to_minimal(
                batch
            )
        for conjunction in batch:
            assert batched.satisfying_value_lists(conjunction) == (
                scalar.satisfying_value_lists(conjunction)
            ) == reference.satisfying_value_lists(conjunction)

    @settings(max_examples=50, deadline=None)
    @given(_spaces, st.integers(0, 2**32))
    def test_any_satisfied_matches_scalar_any(self, space, seed):
        """The instance-vs-many screen (the ``rows_matching_many``
        transpose behind ``_explore_complement``) equals the scalar
        ``any`` expression -- same verdicts, same short-circuit
        semantics, same raised exceptions -- across random conjunction
        lists and instances (in-domain, out-of-domain, foreign keys)."""
        rng = random.Random(seed)
        history = _random_history(space, rng, size=rng.randint(0, 10))
        batch = _random_batch(space, rng, size=rng.randint(0, 8))
        engine = ColumnarEngine(space, history)
        batched = StrategyContext(
            DebugSession(lambda i: Outcome.SUCCEED, space, history=history),
            batch=True,
        )
        instances = [space.random_instance(rng) for __ in range(4)]
        shape = rng.random()
        if shape < 0.4 and instances:
            # Out-of-domain value on one parameter.
            name = rng.choice(space.names)
            instances.append(instances[0].with_value(name, "out-of-domain"))
        elif shape < 0.7:
            # Foreign parameter set (strict encode refuses).
            instances.append(
                Instance({**instances[0].as_dict(), "stranger": 1})
            )
        for instance in instances:
            try:
                expected = any(c.satisfied_by(instance) for c in batch)
            except Exception as error:
                with pytest.raises(type(error)):
                    engine.any_satisfied_by(batch, instance)
                with pytest.raises(type(error)):
                    batched.any_satisfied(batch, instance)
                continue
            assert engine.any_satisfied_by(batch, instance) == expected
            assert batched.any_satisfied(batch, instance) == expected

    def test_unknown_parameter_raises_like_reference_mid_batch(self):
        space = ParameterSpace([Parameter("a", (0, 1))])
        history = ExecutionHistory()
        history.record(Instance({"a": 0}), Outcome.SUCCEED)
        engine = ColumnarEngine(space, history)
        good = Conjunction([Predicate("a", Comparator.EQ, 0)])
        stranger = Conjunction([Predicate("zzz", Comparator.EQ, 1)])
        # The reference loop raises KeyError for a predicate on a
        # parameter the instances do not assign; the batch replays it.
        with pytest.raises(KeyError):
            [history.refutes(c) for c in (good, stranger)]
        with pytest.raises(KeyError):
            engine.refutes_many([good, stranger])
        assert engine.fallbacks == 1  # the stranger was routed to reference


# ---------------------------------------------------------------------------
# Cache coherence: compile memo and match tables
# ---------------------------------------------------------------------------

class TestCacheCoherence:
    def _setup(self):
        space = ParameterSpace(
            [
                Parameter("a", (0.0, 1.0, 2.0, 3.0), ParameterKind.ORDINAL),
                Parameter("b", ("x", "y", "z")),
            ]
        )
        history = ExecutionHistory()
        rng = random.Random(3)
        for __ in range(30):
            instance = space.random_instance(rng)
            if instance not in history:
                history.record(
                    instance,
                    Outcome.FAIL if rng.random() < 0.5 else Outcome.SUCCEED,
                )
        return space, history

    def test_repeated_conjunction_never_recompiles(self, monkeypatch):
        space, history = self._setup()
        engine = ColumnarEngine(space, history)
        conjunction = Conjunction(
            [
                Predicate("a", Comparator.LE, 2.0),
                Predicate("b", Comparator.EQ, "y"),
            ]
        )
        calls = {"mask": 0}
        original = Predicate.satisfying_code_mask

        def counting(self, parameter):
            calls["mask"] += 1
            return original(self, parameter)

        monkeypatch.setattr(Predicate, "satisfying_code_mask", counting)
        first = engine.refutes(conjunction)
        after_first = calls["mask"]
        assert after_first == 2  # one mask per predicate, once
        for __ in range(5):
            assert engine.refutes(conjunction) == first
        assert calls["mask"] == after_first  # memo hit: zero recompiles
        assert engine.compile_misses == 1
        assert engine.compile_hits == 5

    def test_shared_literals_compile_once_across_conjunctions(self, monkeypatch):
        space, history = self._setup()
        engine = ColumnarEngine(space, history)
        shared = Predicate("a", Comparator.LE, 2.0)
        batch = [
            Conjunction([shared]),
            Conjunction([shared, Predicate("b", Comparator.EQ, "y")]),
            Conjunction([shared, Predicate("b", Comparator.EQ, "z")]),
        ]
        calls = {"mask": 0}
        original = Predicate.satisfying_code_mask

        def counting(self, parameter):
            calls["mask"] += 1
            return original(self, parameter)

        monkeypatch.setattr(Predicate, "satisfying_code_mask", counting)
        engine.refutes_many(batch)
        assert calls["mask"] == 3  # one per *distinct* literal, not five

    def test_match_tables_extend_on_history_growth(self):
        space = ParameterSpace(
            [
                Parameter("a", (0.0, 1.0, 2.0, 3.0), ParameterKind.ORDINAL),
                Parameter("b", ("x", "y", "z")),
            ]
        )
        history = ExecutionHistory()
        history.record(Instance({"a": 0.0, "b": "x"}), Outcome.SUCCEED)
        history.record(Instance({"a": 1.0, "b": "y"}), Outcome.FAIL)
        engine = ColumnarEngine(space, history)
        conjunction = Conjunction([Predicate("b", Comparator.EQ, "y")])
        store = history.columnar_store(space)
        assert engine.refutes_many([conjunction]) == [False]
        assert store.match_misses >= 1
        hits_before = store.match_hits
        assert engine.refutes_many([conjunction, conjunction]) == [False, False]
        assert store.match_hits > hits_before  # warm table reused
        # Append a row that flips the answer; the table must be
        # *extended in place* with the new row -- correct new answer,
        # served as a hit (no recompute), extension counted.
        history.record(Instance({"a": 2.0, "b": "y"}), Outcome.SUCCEED)
        misses_before = store.match_misses
        hits_before = store.match_hits
        assert engine.refutes_many([conjunction]) == [True]
        assert engine.refutes(conjunction) is True
        assert store.match_misses == misses_before  # no cold recompute
        assert store.match_hits > hits_before
        assert store.match_extensions >= 1
        assert engine.stats()["match_extensions"] == store.match_extensions

    @settings(max_examples=40, deadline=None)
    @given(_spaces, st.integers(0, 2**32))
    def test_extended_match_tables_equal_fresh_recomputation(self, space, seed):
        """Grow the history in stages with live match tables; every
        cached entry must equal what a cold store would compute."""
        rng = random.Random(seed)
        history = _random_history(space, rng, rng.randint(1, 8))
        store = history.columnar_store(space)
        queried: set[tuple[int, int]] = set()

        def query_some():
            for __ in range(rng.randint(1, 5)):
                index = rng.randrange(len(space.names))
                size = len(space[space.names[index]].domain)
                allowed = rng.randrange(1, 1 << size)
                queried.add((index, allowed))
                store.match_rows(index, allowed)

        query_some()
        for __ in range(3):
            for __ in range(rng.randint(1, 6)):
                instance = space.random_instance(rng)
                if instance not in history:
                    history.record(
                        instance,
                        Outcome.FAIL if rng.random() < 0.4 else Outcome.SUCCEED,
                    )
            store.sync()
            query_some()
            fresh = ExecutionHistory()
            for evaluation in history:
                fresh.append(evaluation)
            cold = fresh.columnar_store(space)
            for index, allowed in queried:
                assert store.match_rows(index, allowed) == cold.match_rows(
                    index, allowed
                ), (index, allowed)

    def test_any_satisfied_fallbacks_are_visible(self):
        space, history = self._setup()
        engine = ColumnarEngine(space, history)
        causes = [Conjunction([Predicate("b", Comparator.EQ, "y")])]
        in_domain = Instance({"a": 1.0, "b": "y"})
        assert engine.any_satisfied_by(causes, in_domain) is True
        assert engine.fallbacks == 0
        # An instance with a foreign parameter set cannot be encoded
        # strictly; the screen degrades to the reference path, visibly.
        foreign = Instance({"a": 1.0, "b": "y", "extra": 1})
        assert engine.any_satisfied_by(causes, foreign) is True
        assert engine.fallbacks == 1

    def test_stats_snapshot_exposes_counters(self):
        space, history = self._setup()
        engine = ColumnarEngine(space, history)
        conjunction = Conjunction([Predicate("b", Comparator.EQ, "x")])
        engine.refutes(conjunction)
        engine.refutes(conjunction)
        stats = engine.stats()
        assert stats["fallbacks"] == 0
        assert stats["compile_misses"] == 1
        assert stats["compile_hits"] == 1
        assert stats["match_hits"] >= 1


# ---------------------------------------------------------------------------
# Fallback regression: degraded mid-batch, byte-identical reports
# ---------------------------------------------------------------------------

def _ddt_fingerprint(session, seed, **config_kwargs):
    bugdoc = BugDoc(session=session, seed=seed)
    report = bugdoc.find_all(
        Algorithm.DECISION_TREES,
        ddt_config=DDTConfig(find_all=True, **config_kwargs),
    )
    return (
        [str(c) for c in report.causes],
        str(report.explanation),
        report.instances_executed,
        report.budget_exhausted,
        report.ddt_result.rounds,
        report.ddt_result.tree_sizes,
        session.budget.spent,
        len(session.history),
    )


class TestFallbackRegression:
    def _degraded_setup(self):
        """A session whose seeded history contains an out-of-domain row
        mid-stream: the columnar store degrades, and every engine query
        must fall back -- visibly -- without changing any report."""
        space = ParameterSpace(
            [
                Parameter("a", (0, 1, 2, 3), ParameterKind.ORDINAL),
                Parameter("b", ("x", "y")),
            ]
        )

        def oracle(instance):
            bad = instance["a"] >= 2 and instance["b"] == "y"
            return Outcome.FAIL if bad else Outcome.SUCCEED

        history = ExecutionHistory()
        history.record(Instance({"a": 0, "b": "x"}), Outcome.SUCCEED)
        history.record(Instance({"a": 99, "b": "y"}), Outcome.SUCCEED)  # alien
        history.record(Instance({"a": 3, "b": "y"}), Outcome.FAIL)
        return space, oracle, history

    def test_degraded_history_reports_identical_with_visible_fallbacks(self):
        space, oracle, history = self._degraded_setup()
        fingerprints = {}
        for engine_name in ("columnar", "reference"):
            for batch in (True, False):
                session = DebugSession(oracle, space, history=history.copy())
                context = StrategyContext(
                    session, engine=engine_name, batch=batch
                )
                from repro.core.ddt import debugging_decision_trees

                result = debugging_decision_trees(
                    session,
                    DDTConfig(find_all=True, engine=engine_name),
                    context=context,
                )
                fingerprints[(engine_name, batch)] = (
                    tuple(str(c) for c in result.causes),
                    str(result.explanation),
                    result.instances_executed,
                    result.rounds,
                    tuple(result.tree_sizes),
                    len(session.history),
                )
                if engine_name == "columnar":
                    # The degradation is visible, not silent.
                    assert context.fallback_count > 0
                else:
                    assert context.fallback_count == 0
        assert len(set(fingerprints.values())) == 1

    def test_clean_columnar_run_has_zero_fallbacks(self):
        """The CI tripwire: a compilable workload must be served entirely
        by the fast path.  If a refactor silently pushes queries onto
        the reference implementations, this fails."""
        space = ParameterSpace(
            [
                Parameter("a", (0, 1, 2, 3), ParameterKind.ORDINAL),
                Parameter("b", ("x", "y")),
                Parameter("c", ("u", "v", "w")),
            ]
        )

        def oracle(instance):
            bad = instance["a"] >= 2 and instance["b"] == "y"
            return Outcome.FAIL if bad else Outcome.SUCCEED

        session = DebugSession(oracle, space)
        context = StrategyContext(session)
        from repro.core.ddt import debugging_decision_trees

        result = debugging_decision_trees(
            session, DDTConfig(find_all=True), context=context
        )
        assert result.asserted
        assert context.fallback_count == 0

    def test_uncompilable_conjunction_mid_batch_falls_back_per_item(self):
        """A conjunction whose comparator raises on part of the domain is
        uncompilable; the rest of the batch stays on the fast path and
        the fallback is counted."""

        class Spiky:
            """Equality probe that raises against one specific value."""

            def __eq__(self, other):
                if other == "x":
                    raise RuntimeError("cannot compare against 'x'")
                return False

            def __hash__(self):
                return 7

        space = ParameterSpace([Parameter("m", ("x", "y", "z"))])
        history = ExecutionHistory()
        history.record(Instance({"m": "y"}), Outcome.SUCCEED)
        history.record(Instance({"m": "z"}), Outcome.FAIL)
        engine = ColumnarEngine(space, history)
        tricky = Conjunction([Predicate("m", Comparator.EQ, "z")])
        # Building the code mask scans the whole domain -- including the
        # "x" the probe raises on -- so compilation fails; the reference
        # path only ever compares against recorded row values ("y"/"z"),
        # so it answers fine.
        uncompilable = Conjunction([Predicate("m", Comparator.EQ, Spiky())])
        assert compile_conjunction(uncompilable, SpaceCodec(space)) is None
        answers = engine.refutes_many([tricky, uncompilable, tricky])
        assert answers == [
            history.refutes(c) for c in (tricky, uncompilable, tricky)
        ]
        assert answers == [False, False, False]
        assert engine.fallbacks == 1

    def test_batch_toggle_reports_identical_end_to_end(self):
        space = ParameterSpace(
            [
                Parameter("a", (0, 1, 2, 3, 4), ParameterKind.ORDINAL),
                Parameter("b", ("x", "y", "z")),
                Parameter("c", (0, 1), ParameterKind.ORDINAL),
            ]
        )

        def oracle(instance):
            bad = (instance["a"] >= 3 and instance["b"] != "x") or (
                instance["c"] == 1 and instance["b"] == "z"
            )
            return Outcome.FAIL if bad else Outcome.SUCCEED

        fingerprints = []
        for batch in (True, False):
            session = DebugSession(oracle, space)
            fingerprints.append(
                _ddt_fingerprint(session, seed=5, batch_suspects=batch)
            )
        assert fingerprints[0] == fingerprints[1]
