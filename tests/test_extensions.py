"""Tests for the future-work extensions (group testing, observed vars)."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Comparator, Conjunction, Instance, Predicate
from repro.extensions import (
    CountingTest,
    ObservationLog,
    binary_splitting,
    enrich,
    find_defectives,
)


def _item_local_test(bad_items):
    """A pipeline over data subsets failing iff any bad item is present."""

    def test(subset):
        return any(item in bad_items for item in subset)

    return test


class TestCountingTest:
    def test_memoizes(self):
        calls = []

        def raw(subset):
            calls.append(tuple(subset))
            return False

        counting = CountingTest(raw)
        counting([1, 2])
        counting([2, 1])  # same frozenset
        assert counting.calls == 1
        assert len(calls) == 1


class TestBinarySplitting:
    def test_isolates_single_defective(self):
        items = list(range(16))
        test = CountingTest(_item_local_test({11}))
        defective, used = binary_splitting(test, items)
        assert defective == 11
        assert used <= math.ceil(math.log2(16)) + 1

    def test_clean_group_returns_none(self):
        defective, __ = binary_splitting(_item_local_test(set()), [1, 2, 3])
        assert defective is None

    def test_empty_group(self):
        defective, used = binary_splitting(_item_local_test({1}), [])
        assert defective is None
        assert used == 0


class TestFindDefectives:
    def test_finds_all_defectives(self):
        items = [f"row{i}" for i in range(64)]
        bad = {"row3", "row40", "row63"}
        result = find_defectives(_item_local_test(bad), items)
        assert set(result.defectives) == bad
        assert result.monotonicity_violations == 0

    def test_beats_exhaustive_scan(self):
        items = list(range(256))
        bad = {17, 200}
        result = find_defectives(_item_local_test(bad), items)
        assert set(result.defectives) == bad
        assert result.tests_used < len(items)
        assert result.savings_factor > 4

    def test_clean_dataset_costs_one_test(self):
        result = find_defectives(_item_local_test(set()), list(range(32)))
        assert result.defectives == []
        assert result.tests_used == 1

    def test_budget_respected(self):
        items = list(range(128))
        bad = set(range(0, 128, 8))  # many defectives
        result = find_defectives(_item_local_test(bad), items, max_tests=10)
        # Budget is checked between rounds; an in-flight isolation may
        # finish, overshooting by at most ceil(log2 n) + 1 tests.
        assert result.tests_used <= 10 + math.ceil(math.log2(len(items))) + 1
        assert set(result.defectives) <= bad

    def test_combinatorial_defect_flagged(self):
        """Failure requires BOTH items: monotonicity does not hold."""

        def test(subset):
            return 1 in subset and 2 in subset

        result = find_defectives(test, [1, 2, 3, 4])
        assert result.monotonicity_violations >= 1

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(4, 128),
        st.data(),
    )
    def test_property_all_item_local_defects_found(self, n, data):
        items = list(range(n))
        bad = data.draw(
            st.sets(st.sampled_from(items), min_size=0, max_size=min(5, n))
        )
        result = find_defectives(_item_local_test(bad), items)
        assert set(result.defectives) == bad

    @settings(max_examples=25, deadline=None)
    @given(st.integers(8, 512), st.integers(1, 4), st.integers(0, 10_000))
    def test_property_cost_is_logarithmic(self, n, d, seed):
        rng = random.Random(seed)
        items = list(range(n))
        bad = set(rng.sample(items, min(d, n)))
        result = find_defectives(_item_local_test(bad), items)
        # Per defective: one group test + an isolation of up to
        # ceil(log2 n) + 1 tests + one confirmation; plus a final clean
        # group test.
        bound = len(bad) * (math.ceil(math.log2(n)) + 4) + 2
        assert result.tests_used <= bound


class TestObservationLog:
    def test_record_and_merge(self):
        log = ObservationLog()
        instance = Instance({"a": 1})
        log.record(instance, {"memory": 10.0})
        log.record(instance, {"rows": 5})
        assert log.observations_for(instance) == {"memory": 10.0, "rows": 5}
        assert log.variables == {"memory", "rows"}
        assert len(log) == 1


class TestEnrich:
    def _cause(self):
        return Conjunction([Predicate("a", Comparator.EQ, 0)])

    def test_numeric_signal_detected(self):
        log = ObservationLog()
        rng = random.Random(0)
        for i in range(40):
            a = i % 2
            instance = Instance({"a": a, "b": i})
            # Memory spikes exactly when the cause (a=0) fires.
            memory = 100.0 + rng.random() if a == 0 else 10.0 + rng.random()
            log.record(instance, {"memory": memory})
        (explanation,) = enrich([self._cause()], log)
        assert explanation.annotations
        top = explanation.annotations[0]
        assert top.variable == "memory"
        assert "higher" in top.summary

    def test_categorical_signal_detected(self):
        log = ObservationLog()
        for i in range(40):
            a = i % 2
            instance = Instance({"a": a, "b": i})
            warning = "OOM" if a == 0 else "none"
            log.record(instance, {"warning": warning})
        (explanation,) = enrich([self._cause()], log, min_strength=0.5)
        assert any(
            "OOM" in annotation.summary for annotation in explanation.annotations
        )

    def test_uninformative_observation_filtered(self):
        log = ObservationLog()
        rng = random.Random(1)
        for i in range(40):
            instance = Instance({"a": i % 2, "b": i})
            log.record(instance, {"noise": rng.random()})
        (explanation,) = enrich([self._cause()], log)
        assert explanation.annotations == []

    def test_str_renders_cause_and_annotations(self):
        log = ObservationLog()
        for i in range(20):
            instance = Instance({"a": i % 2, "b": i})
            log.record(instance, {"m": 50.0 if i % 2 == 0 else 1.0})
        (explanation,) = enrich([self._cause()], log)
        text = str(explanation)
        assert "a = 0" in text
        if explanation.annotations:
            assert "[observed]" in text

    def test_empty_log(self):
        (explanation,) = enrich([self._cause()], ObservationLog())
        assert explanation.cause == self._cause()
        assert explanation.annotations == []
