"""Tests for the observability layer (repro.obs): durable event logs,
the write-through sink, the metrics registry, and replay.

The contracts under test:

1. **Durability is prefix-complete.**  Persisted event rows are always
   a seq-contiguous prefix of the live stream -- batched flushing,
   drops under backpressure, and hard crashes may lose a *tail*, never
   fabricate a gap-hiding "complete" stream.
2. **Replay is byte-identical.**  An event replayed from the store
   (``DurableEventBus.events`` on a fresh bus, a restarted service)
   serializes to exactly the bytes the live event did.
3. **Telemetry never breaks the job.**  A full sink queue drops and
   counts; a broken store counts errors; the job's own event stream and
   result are unaffected.
4. **Metrics are cheap and consistent.**  Per-thread shards merge into
   one snapshot; span events feed histograms; the job-end
   ``metrics_snapshot`` event carries the per-job tally.
5. **Crash recovery** (satellite): a service killed mid-job leaves a
   queryable, seq-contiguous prefix that a fresh bus replays and then
   ends -- it never blocks waiting for a terminal event that died with
   the old process.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time

import pytest

from repro.core import (
    Instance,
    Outcome,
    Parameter,
    ParameterSpace,
)
from repro.exec import EventBus
from repro.obs import (
    DurableEventBus,
    EventLogSink,
    EventMetrics,
    MetricsRegistry,
    event_to_row,
    percentile,
    row_to_event,
)
from repro.provenance import SQLiteProvenanceStore
from repro.service import DebugService, JobSpec, JobStatus
from repro.service.service import report_fingerprint, spec_fingerprint


def _space() -> ParameterSpace:
    return ParameterSpace(
        [
            Parameter("a", (0, 1, 2, 3)),
            Parameter("b", ("x", "y")),
        ]
    )


def _oracle(instance: Instance) -> Outcome:
    return Outcome.FAIL if instance["a"] == 0 else Outcome.SUCCEED


def _job(job_id: str, count: int = 6, workflow: str = "obs", **kwargs):
    space = _space()

    def run(session):
        import random

        rng = random.Random(7)
        for _ in range(count):
            session.evaluate(space.random_instance(rng))
        return count

    return JobSpec(
        job_id=job_id,
        executor=_oracle,
        space=space,
        workflow=workflow,
        run=run,
        **kwargs,
    )


# ---------------------------------------------------------------------------
# Schema-v4 store: jobs + job_events
# ---------------------------------------------------------------------------

def _row(job_id, seq, kind, terminal=False, payload=None):
    return {
        "job_id": job_id,
        "seq": seq,
        "kind": kind,
        "ts_wall": 1000.0 + seq,
        "ts_monotonic": 10.0 + seq,
        "terminal": terminal,
        "payload": payload or {},
    }


class TestStoreV4:
    def test_job_lifecycle_rows(self, tmp_path):
        store = SQLiteProvenanceStore(tmp_path / "v4.db")
        store.begin_job(
            "j1", workflow="wf", algorithm="combined",
            spec_fingerprint="abc", created_at=1.0,
        )
        assert store.job_row("j1")["status"] == "submitted"
        store.finish_job(
            "j1", status="succeeded", report_fingerprint="def",
            budget_spent=5, wall_seconds=1.5, finished_at=2.0,
        )
        row = store.job_row("j1")
        assert row["status"] == "succeeded"
        assert row["spec_fingerprint"] == "abc"
        assert row["report_fingerprint"] == "def"
        assert row["budget_spent"] == 5
        assert store.job_row("missing") is None
        assert [r["job_id"] for r in store.job_rows()] == ["j1"]
        store.close()

    def test_begin_job_is_latest_wins(self, tmp_path):
        store = SQLiteProvenanceStore(tmp_path / "v4.db")
        store.begin_job("j1", workflow="wf")
        store.append_job_events([_row("j1", 0, "submitted")])
        store.finish_job("j1", status="succeeded")
        # Resubmission purges the prior incarnation's row and events.
        store.begin_job("j1", workflow="wf2")
        assert store.job_row("j1")["status"] == "submitted"
        assert store.job_row("j1")["workflow"] == "wf2"
        assert store.job_event_rows("j1") == []
        store.close()

    def test_event_rows_are_prefix_complete(self, tmp_path):
        store = SQLiteProvenanceStore(tmp_path / "v4.db")
        store.append_job_events(
            [_row("j1", 0, "submitted"), _row("j1", 1, "started")]
        )
        # A gap: seq 2 was lost (dropped row / crashed flush).
        store.append_job_events(
            [_row("j1", 3, "late"), _row("j1", 4, "finished", terminal=True)]
        )
        rows = store.job_event_rows("j1")
        assert [r["seq"] for r in rows] == [0, 1]
        assert not any(r["terminal"] for r in rows)
        # start= filters within the prefix, it does not extend it.
        assert [r["seq"] for r in store.job_event_rows("j1", start=1)] == [1]
        assert store.job_event_rows("j1", start=2) == []
        store.close()

    def test_append_is_idempotent(self, tmp_path):
        store = SQLiteProvenanceStore(tmp_path / "v4.db")
        first = _row("j1", 0, "submitted", payload={"v": 1})
        store.append_job_events([first])
        # Redelivery (sink retry) must not duplicate or overwrite.
        store.append_job_events([_row("j1", 0, "submitted", payload={"v": 2})])
        rows = store.job_event_rows("j1")
        assert len(rows) == 1
        assert rows[0]["payload"] == {"v": 1}
        assert store.job_event_count() == 1
        store.close()

    def test_iter_job_events_orders_and_filters(self, tmp_path):
        store = SQLiteProvenanceStore(tmp_path / "v4.db")
        store.begin_job("a", workflow="wf1")
        store.begin_job("b", workflow="wf2")
        store.append_job_events(
            [
                _row("b", 0, "submitted"),
                _row("a", 0, "submitted"),
                _row("a", 1, "span", payload={"name": "solver"}),
                _row("b", 1, "finished", terminal=True),
            ]
        )
        rows = list(store.iter_job_events(batch_size=2))
        assert [(r["job_id"], r["seq"]) for r in rows] == [
            ("a", 0), ("a", 1), ("b", 0), ("b", 1),
        ]
        assert [
            r["job_id"] for r in store.iter_job_events(workflow="wf1")
        ] == ["a", "a"]
        assert [
            r["kind"] for r in store.iter_job_events(kinds=["span"])
        ] == ["span"]
        store.close()


# ---------------------------------------------------------------------------
# Row conversion + sink
# ---------------------------------------------------------------------------

class TestSink:
    def test_row_roundtrip_is_byte_identical(self, tmp_path):
        bus = EventBus()
        live = bus.publish("j", "span", {"name": "solver", "seconds": 0.25})
        store = SQLiteProvenanceStore(tmp_path / "s.db")
        store.append_job_events([event_to_row(live)])
        (persisted,) = store.job_event_rows("j")
        replayed = row_to_event(persisted)
        assert json.dumps(replayed.to_dict(), sort_keys=True) == json.dumps(
            live.to_dict(), sort_keys=True
        )
        assert replayed.monotonic == live.monotonic
        store.close()

    def test_sink_flush_barrier_and_lifecycle(self, tmp_path):
        store = SQLiteProvenanceStore(tmp_path / "s.db")
        sink = EventLogSink(store)
        bus = EventBus()
        sink.enqueue(
            bus.publish(
                "j", "submitted", {"workflow": "wf", "algorithm": "combined"}
            )
        )
        sink.enqueue(bus.publish("j", "started"))
        sink.enqueue(
            bus.publish(
                "j",
                "finished",
                {"status": "succeeded", "budget_spent": 3},
                close=True,
            )
        )
        assert sink.flush(5.0)
        assert [r["kind"] for r in store.job_event_rows("j")] == [
            "submitted", "started", "finished",
        ]
        row = store.job_row("j")
        assert row["workflow"] == "wf"
        assert row["status"] == "succeeded"
        assert row["budget_spent"] == 3
        assert sink.stats()["flushed"] == 3
        sink.close()
        store.close()

    def test_full_queue_drops_and_counts(self, tmp_path):
        store = SQLiteProvenanceStore(tmp_path / "s.db")
        sink = EventLogSink(store, maxsize=1)
        # Stall the flusher so the queue stays full.
        gate = threading.Event()
        original = sink._write

        def slow_write(rows):
            gate.wait(5.0)
            original(rows)

        sink._write = slow_write
        bus = EventBus()
        for index in range(50):
            sink.enqueue(bus.publish("j", f"k{index}"))
        gate.set()
        sink.flush(5.0)
        stats = sink.stats()
        assert stats["dropped"] > 0
        assert stats["flushed"] + stats["dropped"] == 50
        # What did land is still a contiguous prefix.
        rows = store.job_event_rows("j")
        assert [r["seq"] for r in rows] == list(range(len(rows)))
        sink.close()
        store.close()

    def test_store_errors_are_swallowed_and_counted(self):
        class BrokenStore:
            def append_job_events(self, rows):
                raise RuntimeError("disk on fire")

        sink = EventLogSink(BrokenStore())
        bus = EventBus()
        sink.enqueue(bus.publish("j", "submitted"))
        sink.flush(5.0)
        assert sink.stats()["errors"] == 1
        assert sink.stats()["flushed"] == 0
        sink.close()

    def test_close_switches_to_synchronous_writes(self, tmp_path):
        store = SQLiteProvenanceStore(tmp_path / "s.db")
        sink = EventLogSink(store)
        bus = EventBus()
        sink.enqueue(bus.publish("j", "submitted"))
        sink.close()
        # Late teardown events (jobs finishing after service shutdown)
        # still land, synchronously.
        sink.enqueue(bus.publish("j", "finished", {}, close=True))
        assert [r["kind"] for r in store.job_event_rows("j")] == [
            "submitted", "finished",
        ]
        assert sink.flush() is True  # no-op barrier after close
        sink.close()  # idempotent
        store.close()


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_percentile(self):
        assert percentile([], 0.5) is None
        assert percentile([3.0], 0.95) == 3.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5
        assert percentile(list(range(1, 101)), 0.95) == pytest.approx(95.05)

    def test_counters_merge_across_threads(self):
        registry = MetricsRegistry()

        def work():
            for _ in range(100):
                registry.counter("ticks")
            registry.observe("lat", 1.0)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        registry.gauge("depth", 7)
        snap = registry.snapshot()
        assert snap["counters"]["ticks"] == 400.0
        assert snap["gauges"]["depth"] == 7.0
        assert snap["histograms"]["lat"]["count"] == 4
        assert snap["histograms"]["lat"]["sum"] == 4.0

    def test_histogram_stats(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0, 10.0):
            registry.observe("span.solver.seconds", value)
        hist = registry.snapshot()["histograms"]["span.solver.seconds"]
        assert hist["count"] == 4
        assert hist["min"] == 1.0
        assert hist["max"] == 10.0
        assert hist["sum"] == 16.0
        assert hist["p50"] == 2.5

    def test_event_metrics_forwards_and_tallies(self):
        seen = []
        metrics = EventMetrics(
            lambda kind, payload: seen.append((kind, payload)),
            MetricsRegistry(),
        )
        metrics("started", {})
        metrics("span", {"name": "solver", "seconds": 0.5})
        metrics("span", {"name": "solver", "seconds": 0.25})
        metrics("budget_spent", {"spent": 1})
        assert [kind for kind, _ in seen] == [
            "started", "span", "span", "budget_spent",
        ]
        payload = metrics.snapshot_payload()
        assert payload["events"] == {
            "budget_spent": 1, "span": 2, "started": 1,
        }
        assert payload["spans"]["solver"]["count"] == 2
        assert payload["spans"]["solver"]["total_seconds"] == 0.75


# ---------------------------------------------------------------------------
# Durable bus replay
# ---------------------------------------------------------------------------

class TestDurableEventBus:
    def test_write_through_and_replay_after_restart(self, tmp_path):
        store = SQLiteProvenanceStore(tmp_path / "bus.db")
        bus = DurableEventBus(store)
        bus.publish("j", "submitted", {"workflow": "wf"})
        bus.publish("j", "started")
        bus.publish("j", "finished", {"status": "succeeded"}, close=True)
        live = [e.to_dict() for e in bus.events("j")]
        bus.close()

        restarted = DurableEventBus(store)  # simulates a new process
        replayed = [e.to_dict() for e in restarted.events("j")]
        assert json.dumps(replayed, sort_keys=True) == json.dumps(
            live, sort_keys=True
        )
        assert [e.seq for e in restarted.log("j")] == [0, 1, 2]
        restarted.close()
        store.close()

    def test_replay_after_discard(self, tmp_path):
        store = SQLiteProvenanceStore(tmp_path / "bus.db")
        bus = DurableEventBus(store)
        bus.publish("j", "submitted")
        bus.publish("j", "finished", {}, close=True)
        bus.discard("j")  # memory bounded; the store still has it
        assert [e.kind for e in bus.events("j")] == ["submitted", "finished"]
        assert [e.kind for e in bus.events("j", start=1)] == ["finished"]
        bus.close()
        store.close()

    def test_replay_of_crashed_job_ends_after_prefix(self, tmp_path):
        store = SQLiteProvenanceStore(tmp_path / "bus.db")
        # A prior incarnation began the job but never closed its log.
        store.begin_job("j", workflow="wf")
        store.append_job_events(
            [_row("j", 0, "submitted"), _row("j", 1, "started")]
        )
        bus = DurableEventBus(store)
        events = list(bus.events("j"))  # must not block forever
        assert [e.kind for e in events] == ["submitted", "started"]
        assert not events[-1].terminal
        bus.close()
        store.close()

    def test_unknown_job_still_live_waits(self, tmp_path):
        store = SQLiteProvenanceStore(tmp_path / "bus.db")
        bus = DurableEventBus(store)
        iterator = bus.events("nobody-yet", timeout=0.05)
        with pytest.raises(TimeoutError):
            next(iterator)
        bus.close()
        store.close()


# ---------------------------------------------------------------------------
# Service integration
# ---------------------------------------------------------------------------

class TestServiceTelemetry:
    def test_streams_persist_and_replay_byte_identical(self, tmp_path):
        store = SQLiteProvenanceStore(tmp_path / "svc.db")
        specs = [_job("j1"), _job("j2", count=4)]
        with DebugService(workers=2, store=store) as service:
            handles = [service.submit(spec) for spec in specs]
            results = {h.job_id: h.result(timeout=30) for h in handles}
            assert all(
                r.status is JobStatus.SUCCEEDED for r in results.values()
            )
            live = {
                h.job_id: [e.to_dict() for e in h.events()] for h in handles
            }

        for spec in specs:
            kinds = [e["kind"] for e in live[spec.job_id]]
            assert kinds[0] == "submitted"
            assert kinds[1] == "started"
            assert kinds[-1] == "finished"
            assert "metrics_snapshot" in kinds
            row = store.job_row(spec.job_id)
            assert row["status"] == "succeeded"
            assert row["spec_fingerprint"] == spec_fingerprint(spec)
            assert row["report_fingerprint"] == report_fingerprint(
                results[spec.job_id]
            )
            assert row["budget_spent"] == results[spec.job_id].budget_spent

        # A restarted service over the same store replays every
        # finished job's complete stream, byte-identically.
        with DebugService(workers=2, store=store) as restarted:
            for spec in specs:
                replayed = [
                    e.to_dict()
                    for e in restarted.events.events(spec.job_id)
                ]
                assert json.dumps(replayed, sort_keys=True) == json.dumps(
                    live[spec.job_id], sort_keys=True
                )
        store.close()

    def test_metrics_snapshot_event_and_registry(self, tmp_path):
        store = SQLiteProvenanceStore(tmp_path / "svc.db")
        with DebugService(workers=2, store=store) as service:
            handle = service.submit(_job("j1", count=5))
            result = handle.result(timeout=30)
            events = list(handle.events())
            snapshot = next(
                e for e in events if e.kind == "metrics_snapshot"
            )
            # The per-job tally agrees with the stream itself.
            charged = sum(1 for e in events if e.kind == "budget_spent")
            assert charged == result.budget_spent
            assert snapshot.payload["events"]["budget_spent"] == charged
            spans = snapshot.payload["spans"]
            assert spans["execution"]["count"] == charged
            assert spans["execution"]["total_seconds"] >= 0.0
            registry = service.metrics.snapshot()
            assert registry["counters"]["events.budget_spent"] == charged
            assert (
                registry["histograms"]["span.execution.seconds"]["count"]
                == charged
            )
            stats = service.stats()
            assert stats["events"]["errors"] == 0
        store.close()

    def test_persist_events_false_keeps_store_clean(self, tmp_path):
        store = SQLiteProvenanceStore(tmp_path / "svc.db")
        with DebugService(
            workers=2, store=store, persist_events=False
        ) as service:
            handle = service.submit(_job("j1"))
            assert handle.result(timeout=30).status is JobStatus.SUCCEEDED
            # The live stream is intact; nothing was persisted.
            assert [e.kind for e in handle.events()][0] == "submitted"
        assert store.job_event_count() == 0
        assert store.job_rows() == []
        store.close()


# ---------------------------------------------------------------------------
# Crash recovery (satellite): kill the service mid-job, replay the prefix
# ---------------------------------------------------------------------------

_CRASH_CHILD = """
import json, os, sys, threading

from repro.core import Instance, Outcome, Parameter, ParameterSpace
from repro.obs import event_to_row
from repro.provenance import SQLiteProvenanceStore
from repro.service import DebugService, JobSpec

db_path, side_path = sys.argv[1], sys.argv[2]
space = ParameterSpace([Parameter("a", (0, 1, 2, 3))])
oracle = lambda instance: (
    Outcome.FAIL if instance["a"] == 0 else Outcome.SUCCEED
)
reached = threading.Event()

def run(session):
    import random
    rng = random.Random(3)
    for index in range(50):
        session.evaluate(space.random_instance(rng))
        if index == 4:
            reached.set()
            threading.Event().wait(30)  # hang until the hard kill
    return 50

store = SQLiteProvenanceStore(db_path)
service = DebugService(workers=2, store=store)
side = open(side_path, "w")

def tee():
    for event in service.events.stream():
        side.write(json.dumps(event_to_row(event), sort_keys=True) + "\\n")
        side.flush()

threading.Thread(target=tee, daemon=True).start()
service.submit(JobSpec(
    job_id="doomed", executor=oracle, space=space,
    workflow="crash", run=run,
))
assert reached.wait(20), "job never reached the kill point"
service.events.flush(10.0)  # everything published so far is durable
side.flush()
os._exit(17)  # hard kill: no shutdown, no terminal event
"""


class TestCrashRecovery:
    def test_killed_service_leaves_replayable_prefix(self, tmp_path):
        db_path = tmp_path / "crash.db"
        side_path = tmp_path / "live.jsonl"
        script = tmp_path / "child.py"
        script.write_text(_CRASH_CHILD, encoding="utf-8")
        env = dict(os.environ)
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src",
        )
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, str(script), str(db_path), str(side_path)],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert completed.returncode == 17, completed.stderr

        live_rows = [
            json.loads(line)
            for line in side_path.read_text(encoding="utf-8").splitlines()
        ]
        assert len(live_rows) >= 7  # submitted, started, 5x(span+budget)

        store = SQLiteProvenanceStore(db_path)
        persisted = store.job_event_rows("doomed")
        # Seq-contiguous prefix, never closed.
        assert [r["seq"] for r in persisted] == list(range(len(persisted)))
        assert persisted, "flush()-ed events must survive the kill"
        assert not any(r["terminal"] for r in persisted)
        # Byte-identical to the live view's prefix.
        assert len(persisted) <= len(live_rows)
        for stored, lived in zip(persisted, live_rows, strict=False):
            assert json.dumps(stored, sort_keys=True) == json.dumps(
                lived, sort_keys=True
            )
        # The jobs row recorded the incarnation but no terminal state.
        assert store.job_row("doomed")["status"] == "submitted"

        # A fresh durable bus replays the prefix and *ends* -- it must
        # not wait for a terminal event that died with the process.
        bus = DurableEventBus(store)
        started = time.monotonic()
        replayed = list(bus.events("doomed"))
        assert time.monotonic() - started < 5.0
        assert [e.seq for e in replayed] == [r["seq"] for r in persisted]
        assert json.dumps(
            [event_to_row(e) for e in replayed], sort_keys=True
        ) == json.dumps(persisted, sort_keys=True)
        bus.close()
        store.close()
