"""Retention/compaction, incremental rollups, and the dashboard.

The load-bearing invariants:

* **Rollup differential** -- ``repro query agg`` over ``span:`` /
  ``count:`` metrics answers from the incrementally maintained
  ``job_rollups`` table; the answer must be *byte-identical* (JSON
  bytes, not approximately equal) to the raw-event rescan, before and
  after compaction deletes the raw rows.
* **Compaction safety** -- per-job atomic CAS: a ``kill -9`` mid-sweep
  leaves every job fully compacted or fully raw, re-running converges,
  and a concurrent resubmission (latest-wins) makes the CAS guard skip
  that job rather than half-compact it.
* **Dashboard determinism** -- the rendered document is canonical:
  byte-identical across repeated builds over the same store.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.obs.dashboard import build_dashboard, diff_dashboards, render_dashboard
from repro.obs.query import QueryEngine
from repro.obs.retention import (
    RetentionPolicy,
    RetentionThread,
    compact,
    summarize_job,
)
from repro.provenance import SQLiteProvenanceStore

#: job -> (workflow, status, created_at, solver span seconds).  Spans
#: include awkward floats (1e-17 + 1.0 sums are order-sensitive) so the
#: byte-differential actually exercises IEEE accumulation order.
_JOBS = {
    "a1": ("alpha", "succeeded", 100.0, [1e-17, 1.0, 1e-17]),
    "a2": ("alpha", "succeeded", 200.0, [0.3, 0.1, 0.2]),
    "a3": ("alpha", "failed", 300.0, [2.5]),
    "b1": ("beta", "succeeded", 400.0, [-0.0]),
    "b2": ("beta", "cancelled", 500.0, []),
}


def _populate(store: SQLiteProvenanceStore, jobs=_JOBS) -> None:
    for job_id, (wf, status, created, spans) in jobs.items():
        store.begin_job(
            job_id, workflow=wf, algorithm="combined",
            spec_fingerprint="fp-" + wf, created_at=created,
        )
        rows = []
        seq = 0
        for kind in ("submitted", "started"):
            rows.append({
                "job_id": job_id, "seq": seq, "kind": kind,
                "ts_wall": created + seq, "ts_monotonic": seq,
                "terminal": False, "payload": {},
            })
            seq += 1
        for seconds in spans:
            rows.append({
                "job_id": job_id, "seq": seq, "kind": "span",
                "ts_wall": created + seq, "ts_monotonic": seq,
                "terminal": False,
                "payload": {"name": "solver", "seconds": seconds},
            })
            seq += 1
        rows.append({
            "job_id": job_id, "seq": seq, "kind": "metrics_snapshot",
            "ts_wall": created + seq, "ts_monotonic": seq,
            "terminal": False,
            "payload": {"cache": {"hits": 3, "misses": 1, "executions": 4}},
        })
        seq += 1
        rows.append({
            "job_id": job_id, "seq": seq, "kind": "finished",
            "ts_wall": created + seq, "ts_monotonic": seq,
            "terminal": True, "payload": {"status": status, "causes": [[1]]},
        })
        store.append_job_events(rows)
        store.finish_job(
            job_id, status=status, report_fingerprint="r-" + job_id,
            budget_spent=10, wall_seconds=float(len(rows)),
            finished_at=created + seq,
        )


@pytest.fixture()
def db_path(tmp_path):
    return tmp_path / "retention.db"


@pytest.fixture()
def store(db_path):
    store = SQLiteProvenanceStore(db_path)
    _populate(store)
    yield store
    store.close()


_METRICS = (
    ("span:solver", "sum"), ("span:solver", "mean"), ("span:solver", "p50"),
    ("span:solver", "p95"), ("span:solver", "min"), ("span:solver", "max"),
    ("span:solver", "count"), ("count:span", "sum"), ("count:finished", "count"),
    ("count:submitted", "sum"),
)


def _agg_bytes(engine: QueryEngine, group_by=None) -> bytes:
    answers = {
        f"{metric}/{stat}": engine.aggregate(metric, stat=stat, group_by=group_by)
        for metric, stat in _METRICS
    }
    return json.dumps(answers, sort_keys=True).encode()


class TestRollupDifferential:
    def test_rollup_agg_byte_identical_to_raw(self, store):
        fast = QueryEngine(store, use_rollups=True)
        slow = QueryEngine(store, use_rollups=False)
        for group_by in (None, "workflow", "status"):
            assert _agg_bytes(fast, group_by) == _agg_bytes(slow, group_by)
        assert fast.rollup_hits == 3 * len(_METRICS)
        assert fast.rollup_misses == 0
        assert slow.rollup_hits == 0
        assert slow.rollup_misses == 3 * len(_METRICS)

    def test_rollup_workflow_filter_matches_raw(self, store):
        fast = QueryEngine(store, use_rollups=True)
        slow = QueryEngine(store, use_rollups=False)
        for wf in ("alpha", "beta"):
            a = fast.aggregate("span:solver", stat="sum", workflow=wf)
            b = slow.aggregate("span:solver", stat="sum", workflow=wf)
            assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_duplicate_append_does_not_double_count(self, store):
        # ``INSERT OR IGNORE`` on the event rows must also skip the
        # rollup delta, or replayed batches inflate the aggregates.
        rows = store.job_event_rows("a1")
        store.append_job_events(rows)
        fast = QueryEngine(store, use_rollups=True)
        slow = QueryEngine(store, use_rollups=False)
        assert _agg_bytes(fast) == _agg_bytes(slow)

    def test_migration_backfill_rebuilds_rollups(self, db_path, store):
        expected = _agg_bytes(QueryEngine(store, use_rollups=False))
        # Simulate a pre-v6 store: drop the rollups, rewind the version.
        with store._lock:
            store._connection.execute("DELETE FROM job_rollups")
            store._connection.execute("DELETE FROM event_rollups")
            store._connection.execute("PRAGMA user_version = 5")
            store._connection.commit()
        store.close()
        reopened = SQLiteProvenanceStore(db_path)
        try:
            fast = QueryEngine(reopened, use_rollups=True)
            assert _agg_bytes(fast) == expected
            assert fast.rollup_hits > 0
            assert reopened.event_rollup_rows()  # ledger rebuilt too
        finally:
            reopened.close()

    def test_latest_wins_purges_rollups_and_summary(self, store):
        report = compact(store, RetentionPolicy(), compact_all=True)
        assert report["compacted"] == 5
        assert store.job_summary_row("a1") is not None
        store.begin_job("a1", workflow="alpha", created_at=900.0)
        assert store.job_summary_row("a1") is None
        assert store.rollup_values("span:solver").get("a1") is None

    def test_event_rollup_ledger_is_monotone(self, store):
        before = {
            (r["window_start"], r["kind"]): r["count"]
            for r in store.event_rollup_rows()
        }
        # Resubmission purges the job-scoped tables but the ingest
        # ledger only ever accumulates.
        store.begin_job("a1", workflow="alpha", created_at=900.0)
        compact(store, RetentionPolicy(), compact_all=True)
        after = {
            (r["window_start"], r["kind"]): r["count"]
            for r in store.event_rollup_rows()
        }
        for key, count in before.items():
            assert after[key] >= count


class TestCompaction:
    def test_compact_all_keeps_jobs_and_agg_byte_identical(self, store):
        engine = QueryEngine(store)
        jobs_before = json.dumps(engine.jobs(), sort_keys=True)
        agg_before = _agg_bytes(engine, group_by="workflow")
        report = compact(store, RetentionPolicy(), compact_all=True)
        assert report == {
            "examined": 5, "compacted": 5, "skipped": 0,
            "events_deleted": sum(
                4 + len(spans) for *_rest, spans in _JOBS.values()
            ),
        }
        assert store.job_event_count() == 0
        after = QueryEngine(store)
        assert json.dumps(after.jobs(), sort_keys=True) == jobs_before
        assert _agg_bytes(after, group_by="workflow") == agg_before
        assert after.rollup_misses == 0

    def test_partial_compact_leaves_other_workflow_queries_intact(self, store):
        engine = QueryEngine(store)
        events_before = json.dumps(
            list(engine.events(workflow="beta")), sort_keys=True
        )
        seq_before = json.dumps(
            engine.sequence(["submitted", "finished"], workflow="beta"),
            sort_keys=True,
        )
        compact(store, RetentionPolicy(), workflow="alpha", compact_all=True)
        after = QueryEngine(store)
        assert json.dumps(
            list(after.events(workflow="beta")), sort_keys=True
        ) == events_before
        assert json.dumps(
            after.sequence(["submitted", "finished"], workflow="beta"),
            sort_keys=True,
        ) == seq_before
        assert not list(after.events(workflow="alpha"))

    def test_cas_guard_skips_on_status_mismatch(self, store):
        rows = store.job_event_rows("a1")
        job = next(j for j in store.job_rows() if j["job_id"] == "a1")
        summary = summarize_job(job, rows, compacted_at=1000.0)
        deleted = store.compact_job(
            "a1", expected_status="failed",  # actually succeeded
            expected_finished_at=job["finished_at"], summary=summary,
        )
        assert deleted is None
        assert store.job_event_rows("a1") == rows
        assert store.job_summary_row("a1") is None

    def test_age_bound_and_status_override(self, store):
        policy = RetentionPolicy(
            max_age_seconds=1000.0, status_max_age={"failed": 10_000.0}
        )
        # Last events land at created+seq; with now=1400 a1 (last_ts
        # 106) and a2 (206) are past the 1000s bound -- a3 (304) is
        # older than b1 but "failed" gets the 10x debugging override.
        report = compact(store, policy, now=1400.0)
        assert report["compacted"] == 2
        assert store.job_summary_row("a1") is not None
        assert store.job_summary_row("a2") is not None
        assert store.job_summary_row("a3") is None

    def test_count_bound_compacts_oldest_overflow(self, store):
        report = compact(store, RetentionPolicy(max_raw_jobs=3), now=1e9)
        assert report["compacted"] == 2
        assert store.job_summary_row("a1") is not None
        assert store.job_summary_row("a2") is not None
        assert store.job_summary_row("a3") is None

    def test_compact_is_idempotent(self, store):
        compact(store, RetentionPolicy(), compact_all=True)
        again = compact(store, RetentionPolicy(), compact_all=True)
        assert again == {
            "examined": 0, "compacted": 0, "skipped": 0, "events_deleted": 0,
        }

    def test_summarize_job_ground_truth(self, store):
        job = next(j for j in store.job_rows() if j["job_id"] == "a2")
        summary = summarize_job(
            job, store.job_event_rows("a2"), compacted_at=42.0
        )
        assert summary["event_count"] == 7
        assert summary["first_ts"] == 200.0 and summary["last_ts"] == 206.0
        assert summary["kind_counts"] == {
            "submitted": 1, "started": 1, "span": 3,
            "metrics_snapshot": 1, "finished": 1,
        }
        solver = summary["span_stats"]["solver"]
        assert solver["count"] == 3
        assert solver["total"] == 0.3 + 0.1 + 0.2
        assert summary["counters"] == {
            "cache_hits": 3.0, "cache_misses": 1.0, "cache_executions": 4.0,
            "queue_seconds": 1.0,
        }
        assert summary["terminal_payload"]["status"] == "succeeded"
        assert summary["compacted_at"] == 42.0


_KILLER_CHILD = """
import os, signal, sys
from repro.provenance import SQLiteProvenanceStore
from repro.obs.retention import RetentionPolicy, compact

store = SQLiteProvenanceStore(sys.argv[1])
real = store.compact_job
state = {"n": 0}

def compact_then_die(*args, **kwargs):
    result = real(*args, **kwargs)
    state["n"] += 1
    if state["n"] >= 3:
        os.kill(os.getpid(), signal.SIGKILL)
    return result

store.compact_job = compact_then_die
compact(store, RetentionPolicy(), compact_all=True)
"""


class TestCrashRecovery:
    def test_kill_nine_mid_sweep_leaves_jobs_atomic(self, db_path, store):
        agg_before = _agg_bytes(QueryEngine(store), group_by="workflow")
        store.close()
        import repro

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        child = subprocess.run(
            [sys.executable, "-c", _KILLER_CHILD, str(db_path)],
            env=env,
            capture_output=True,
        )
        assert child.returncode == -signal.SIGKILL, child.stderr.decode()
        reopened = SQLiteProvenanceStore(db_path)
        try:
            # Invariant: every terminal job is fully compacted (summary,
            # no raw events) XOR fully raw (events, no summary).
            raw = {r["job_id"] for r in reopened.job_event_stats()}
            compacted = 0
            for job in reopened.job_rows():
                job_id = job["job_id"]
                summary = reopened.job_summary_row(job_id)
                assert (summary is not None) != (job_id in raw), job_id
                compacted += summary is not None
            assert compacted == 3  # the child died after its third commit
            # Re-running converges: the survivors compact, nothing skips.
            report = compact(reopened, RetentionPolicy(), compact_all=True)
            assert report["compacted"] == len(_JOBS) - 3
            assert report["skipped"] == 0
            assert reopened.job_event_count() == 0
            # And the rollup-served aggregates never flinched.
            assert _agg_bytes(
                QueryEngine(reopened), group_by="workflow"
            ) == agg_before
        finally:
            reopened.close()


class TestRetentionThread:
    def test_sweep_compacts_and_counts(self, store):
        thread = RetentionThread(
            store, RetentionPolicy(max_age_seconds=0.0), interval_seconds=3600.0
        )
        report = thread.sweep()
        assert report["compacted"] == 5
        stats = thread.stats()
        assert stats["sweeps"] == 1
        assert stats["compacted"] == 5
        assert stats["errors"] == 0
        thread.start()
        thread.stop()

    def test_sweep_error_is_contained(self, store):
        thread = RetentionThread(store, RetentionPolicy())
        store.close()
        assert thread.sweep() is None
        assert thread.stats()["errors"] == 1


class TestQueryPagination:
    def test_jobs_limit_offset(self, store):
        engine = QueryEngine(store)
        every = engine.jobs()
        assert engine.jobs(limit=2) == every[:2]
        assert engine.jobs(limit=2, offset=2) == every[2:4]
        assert engine.jobs(offset=4) == every[4:]

    def test_events_offset(self, store):
        engine = QueryEngine(store)
        every = list(engine.events(kinds=["span"]))
        assert list(engine.events(kinds=["span"], offset=2)) == every[2:]
        assert list(
            engine.events(kinds=["span"], limit=2, offset=1)
        ) == every[1:3]

    def test_sequence_limit_offset(self, store):
        engine = QueryEngine(store)
        every = engine.sequence(["submitted", "finished"])
        assert len(every) == 5
        assert engine.sequence(["submitted", "finished"], limit=2) == every[:2]
        assert engine.sequence(
            ["submitted", "finished"], limit=2, offset=3
        ) == every[3:]


class TestDashboard:
    def test_render_is_deterministic(self, store):
        first = render_dashboard(build_dashboard(store))
        second = render_dashboard(build_dashboard(store))
        assert first == second
        document = json.loads(first)
        assert set(document["families"]) == {"alpha", "beta"}

    def test_compaction_only_moves_the_compacted_counter(self, store):
        before = build_dashboard(store)
        compact(store, RetentionPolicy(), compact_all=True)
        after = build_dashboard(store)
        lines = diff_dashboards(before, after)
        assert lines and all(".compacted:" in line for line in lines)

    def test_diff_reports_metric_movement(self, store):
        before = build_dashboard(store)
        after = json.loads(json.dumps(before))
        after["families"]["alpha"][0]["success_rate"] = 0.0
        lines = diff_dashboards(before, after)
        assert len(lines) == 1 and "success_rate" in lines[0]
        assert diff_dashboards(before, before) == []

    def test_success_rate_and_span_stats(self, store):
        document = build_dashboard(store, bucket_seconds=1e9)
        (alpha,) = document["families"]["alpha"]
        assert alpha["jobs"] == 3
        assert alpha["succeeded"] == 2 and alpha["failed"] == 1
        assert alpha["success_rate"] == round(2 / 3, 6)
        assert alpha["spans"]["solver"]["jobs"] == 3
        assert alpha["cache_hit_rate"] == 0.75
