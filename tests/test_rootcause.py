"""Tests for Definitions 3-5 (repro.core.rootcause)."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core import (
    Comparator,
    Conjunction,
    ExecutionHistory,
    Instance,
    Outcome,
    Parameter,
    ParameterKind,
    ParameterSpace,
    Predicate,
    is_definitive_root_cause,
    is_hypothetical_root_cause,
    is_minimal_definitive_root_cause,
    minimal_definitive_causes_of_oracle,
    prune_to_minimal,
)
from repro.core.rootcause import find_refuting_instance


def _space():
    return ParameterSpace(
        [
            Parameter("a", (0, 1, 2, 3), ParameterKind.ORDINAL),
            Parameter("b", ("x", "y")),
        ]
    )


def _conj(*predicates):
    return Conjunction(predicates)


def _oracle_for(causes):
    def oracle(instance):
        return (
            Outcome.FAIL
            if any(c.satisfied_by(instance) for c in causes)
            else Outcome.SUCCEED
        )

    return oracle


class TestHypothetical:
    def test_definition_3(self):
        space = _space()
        cause = _conj(Predicate("a", Comparator.EQ, 0))
        history = ExecutionHistory.from_pairs(
            [
                (Instance({"a": 0, "b": "x"}), Outcome.FAIL),
                (Instance({"a": 1, "b": "x"}), Outcome.SUCCEED),
            ]
        )
        assert is_hypothetical_root_cause(cause, history)
        history.record(Instance({"a": 0, "b": "y"}), Outcome.SUCCEED)
        assert not is_hypothetical_root_cause(cause, history)
        del space


class TestDefinitive:
    def test_true_cause_is_definitive(self):
        space = _space()
        cause = _conj(Predicate("a", Comparator.GT, 2))
        oracle = _oracle_for([cause])
        assert is_definitive_root_cause(cause, space, oracle)

    def test_partial_cause_is_not_definitive(self):
        space = _space()
        true_cause = _conj(
            Predicate("a", Comparator.GT, 2), Predicate("b", Comparator.EQ, "x")
        )
        oracle = _oracle_for([true_cause])
        too_general = _conj(Predicate("a", Comparator.GT, 2))
        assert not is_definitive_root_cause(too_general, space, oracle)

    def test_unsatisfiable_requires_support(self):
        space = _space()
        oracle = _oracle_for([_conj(Predicate("a", Comparator.EQ, 0))])
        empty_region = _conj(
            Predicate("a", Comparator.LE, 0), Predicate("a", Comparator.GT, 2)
        )
        assert not is_definitive_root_cause(empty_region, space, oracle)
        assert is_definitive_root_cause(
            empty_region, space, oracle, require_support=False
        )

    def test_find_refuting_instance_exhaustive(self):
        space = _space()
        oracle = _oracle_for([_conj(Predicate("a", Comparator.EQ, 0))])
        refutation = find_refuting_instance(
            _conj(Predicate("b", Comparator.EQ, "x")), space, oracle
        )
        assert refutation is not None
        assert oracle(refutation) is Outcome.SUCCEED
        assert refutation["b"] == "x"

    def test_find_refuting_instance_sampled(self):
        space = ParameterSpace(
            [Parameter(f"p{i}", tuple(range(10))) for i in range(6)]
        )
        oracle = _oracle_for([_conj(Predicate("p0", Comparator.EQ, 0))])
        refutation = find_refuting_instance(
            _conj(Predicate("p1", Comparator.EQ, 3)),
            space,
            oracle,
            max_checks=300,
            rng=random.Random(0),
        )
        assert refutation is not None


class TestMinimal:
    def test_minimal_cause(self):
        space = _space()
        cause = _conj(Predicate("a", Comparator.EQ, 0))
        assert is_minimal_definitive_root_cause(cause, space, _oracle_for([cause]))

    def test_non_minimal_cause_detected(self):
        space = _space()
        true_cause = _conj(Predicate("a", Comparator.EQ, 0))
        padded = _conj(
            Predicate("a", Comparator.EQ, 0), Predicate("b", Comparator.EQ, "x")
        )
        assert not is_minimal_definitive_root_cause(
            padded, space, _oracle_for([true_cause])
        )


class TestPruneToMinimal:
    def test_drops_strictly_subsumed(self):
        space = _space()
        general = _conj(Predicate("a", Comparator.EQ, 0))
        specific = _conj(
            Predicate("a", Comparator.EQ, 0), Predicate("b", Comparator.EQ, "x")
        )
        assert prune_to_minimal([general, specific], space) == [general]

    def test_keeps_incomparable(self):
        space = _space()
        left = _conj(Predicate("a", Comparator.EQ, 0))
        right = _conj(Predicate("b", Comparator.EQ, "x"))
        assert set(prune_to_minimal([left, right], space)) == {left, right}

    def test_deduplicates(self):
        space = _space()
        cause = _conj(Predicate("a", Comparator.EQ, 0))
        assert prune_to_minimal([cause, cause], space) == [cause]


class TestEnumeration:
    def test_enumerates_equality_causes(self):
        space = _space()
        planted = _conj(
            Predicate("a", Comparator.EQ, 0), Predicate("b", Comparator.EQ, "y")
        )
        causes = minimal_definitive_causes_of_oracle(
            space, _oracle_for([planted]), max_arity=2
        )
        assert planted in causes
        # Nothing shorter can be definitive.
        assert all(len(c) == 2 for c in causes)

    def test_verifies_candidates(self):
        space = _space()
        planted = _conj(Predicate("a", Comparator.GT, 2))
        padded = _conj(
            Predicate("a", Comparator.GT, 2), Predicate("b", Comparator.EQ, "x")
        )
        verified = minimal_definitive_causes_of_oracle(
            space,
            _oracle_for([planted]),
            candidate_conjunctions=[planted, padded],
        )
        assert verified == [planted]


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_planted_equality_cause_is_always_minimal_definitive(seed):
    """Random single planted equality conjunctions satisfy Definition 5."""
    rng = random.Random(seed)
    n_params = rng.randint(2, 4)
    space = ParameterSpace(
        [Parameter(f"p{i}", tuple(range(3))) for i in range(n_params)]
    )
    arity = rng.randint(1, min(2, n_params))
    params = rng.sample(range(n_params), arity)
    cause = Conjunction(
        [Predicate(f"p{i}", Comparator.EQ, rng.randint(0, 2)) for i in params]
    )
    oracle = _oracle_for([cause])
    assert is_minimal_definitive_root_cause(cause, space, oracle)
