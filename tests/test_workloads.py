"""Tests for the real-world workload simulators (repro.workloads).

The heavyweight ML-pipeline training runs live in test_ml_pipeline.py;
this module covers datasets, classifiers (on small inputs), and the
Data Polygamy / GAN / DBSherlock simulators.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core import Instance, Outcome
from repro.workloads import (
    DecisionTreeClassifier,
    GradientBoostingClassifier,
    LogisticRegressionClassifier,
    cross_val_f1,
    load_dataset,
    macro_f1,
)
from repro.workloads import data_polygamy, dbsherlock, gan_training
from repro.workloads.datasets import DATASET_NAMES


class TestDatasets:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_shapes(self, name):
        data = load_dataset(name)
        assert data.X.shape[0] == data.y.shape[0]
        assert data.n_classes >= 3
        assert data.name == name

    def test_deterministic(self):
        first = load_dataset("iris")
        second = load_dataset("iris")
        assert np.array_equal(first.X, second.X)
        assert np.array_equal(first.y, second.y)

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("zzz")

    def test_difficulty_ordering(self):
        """iris is designed to be easier than images (decision trees feel
        the dimensionality most)."""
        iris = load_dataset("iris")
        images = load_dataset("images")
        iris_f1 = cross_val_f1("decision_tree", iris.X, iris.y, folds=3)
        images_f1 = cross_val_f1("decision_tree", images.X, images.y, folds=3)
        assert iris_f1 > images_f1


class TestClassifiers:
    @pytest.fixture(scope="class")
    def easy(self):
        return load_dataset("iris")

    @pytest.mark.parametrize(
        "model_factory",
        [
            LogisticRegressionClassifier,
            DecisionTreeClassifier,
            GradientBoostingClassifier,
        ],
    )
    def test_learns_separable_data(self, model_factory, easy):
        split = len(easy.y) * 3 // 4
        model = model_factory()
        model.fit(easy.X[:split], easy.y[:split])
        predictions = model.predict(easy.X[split:])
        assert macro_f1(easy.y[split:], predictions) > 0.75

    def test_unfitted_predict_raises(self, easy):
        for model in (
            LogisticRegressionClassifier(),
            DecisionTreeClassifier(),
            GradientBoostingClassifier(),
        ):
            with pytest.raises(RuntimeError):
                model.predict(easy.X)

    def test_macro_f1_perfect_and_zero(self):
        y = np.array([0, 0, 1, 1])
        assert macro_f1(y, y) == 1.0
        assert macro_f1(y, 1 - y) == 0.0

    def test_corruption_destroys_score(self, easy):
        clean = cross_val_f1("decision_tree", easy.X, easy.y, folds=3)
        corrupt = cross_val_f1(
            "decision_tree", easy.X, easy.y, folds=3, corrupt_labels=True
        )
        assert corrupt < clean
        assert corrupt < 0.6  # below the pipeline's evaluation threshold

    def test_unknown_estimator_rejected(self, easy):
        with pytest.raises(KeyError):
            cross_val_f1("zzz", easy.X, easy.y)


class TestDataPolygamy:
    def test_space_shape_matches_paper(self):
        space = data_polygamy.make_space()
        kinds = [len(p.domain) for p in space.parameters]
        assert len(space) == 12  # 2 boolean + 3 categorical + 7 numerical
        booleans = [p for p in space.parameters if set(p.domain) == {False, True}]
        assert len(booleans) == 2

    def test_simulator_matches_oracle(self):
        space = data_polygamy.make_space()
        executor = data_polygamy.make_executor()
        rng = random.Random(0)
        for __ in range(200):
            instance = space.random_instance(rng)
            assert executor(instance) is data_polygamy.oracle(instance)

    def test_true_causes_are_definitive(self):
        space = data_polygamy.make_space()
        rng = random.Random(1)
        for cause in data_polygamy.true_causes():
            for __ in range(50):
                instance = cause.sample_satisfying(space, rng)
                assert instance is not None
                assert data_polygamy.oracle(instance) is Outcome.FAIL

    def test_clean_runs_succeed(self):
        executor = data_polygamy.make_executor()
        instance = Instance(
            {
                "fdr_correction": False,
                "restrict_outliers": False,
                "significance_method": "montecarlo",
                "temporal_resolution": "day",
                "spatial_aggregation": "city",
                "n_permutations": 100,
                "p_value_threshold": 0.05,
                "n_datasets": 50,
                "feature_window": 2,
                "noise_level": 0.1,
                "min_support": 5,
                "seed_bucket": 0,
            }
        )
        assert executor(instance) is Outcome.SUCCEED


class TestGANTraining:
    def test_space_shape_matches_paper(self):
        space = gan_training.make_space()
        assert len(space) == 6
        assert all(len(p.domain) == 5 for p in space.parameters)

    def test_simulator_matches_oracle(self):
        space = gan_training.make_space()
        executor = gan_training.make_executor()
        rng = random.Random(0)
        for __ in range(200):
            instance = space.random_instance(rng)
            assert executor(instance) is gan_training.oracle(instance)

    def test_collapse_regions_fail_everywhere(self):
        space = gan_training.make_space()
        rng = random.Random(1)
        for cause in gan_training.true_causes():
            for __ in range(50):
                instance = cause.sample_satisfying(space, rng)
                assert gan_training.oracle(instance) is Outcome.FAIL

    def test_healthy_region_exists(self):
        space = gan_training.make_space()
        rng = random.Random(2)
        successes = sum(
            1
            for __ in range(200)
            if gan_training.oracle(space.random_instance(rng)) is Outcome.SUCCEED
        )
        assert successes > 50

    def test_fid_improves_with_training(self):
        short = gan_training.simulate_fid(1e-4, 1e-4, 0.5, "spectral", 20_000, 64)
        long = gan_training.simulate_fid(1e-4, 1e-4, 0.5, "spectral", 400_000, 64)
        assert long < short


class TestDBSherlock:
    def test_metric_log_shape(self):
        log = dbsherlock.generate_metric_log(
            n_normal=40, n_per_anomaly=10, classes=("cpu_saturation",)
        )
        assert log.X.shape == (50, dbsherlock.N_STATISTICS)
        assert log.labels.count("normal") == 40
        assert log.labels.count("cpu_saturation") == 10

    def test_unknown_anomaly_rejected(self):
        with pytest.raises(KeyError):
            dbsherlock.generate_metric_log(classes=("zzz",))
        with pytest.raises(KeyError):
            dbsherlock.build_case("zzz")

    def test_feature_selection_finds_signature_stats(self):
        log = dbsherlock.generate_metric_log(
            n_normal=120, n_per_anomaly=40, classes=("cpu_saturation",), seed=3
        )
        features = dbsherlock.select_features(log)
        assert len(features) == dbsherlock.N_SELECTED
        # The strongest signature statistics (0 and 1) must be selected.
        assert 0 in features and 1 in features

    def test_bucketize_produces_ordinal_space(self):
        log = dbsherlock.generate_metric_log(
            n_normal=60, n_per_anomaly=20, classes=("io_saturation",), seed=4
        )
        features = dbsherlock.select_features(log)
        space, instances = dbsherlock.bucketize(log, features)
        assert len(space) == dbsherlock.N_SELECTED
        assert all(p.is_ordinal for p in space.parameters)
        assert len(instances) == log.n_rows
        for instance in instances[:20]:
            space.validate(instance)

    def test_case_split_proportions(self):
        case = dbsherlock.build_case("lock_contention", seed=5)
        total = (
            len(case.training.instances)
            + len(case.budget_pool.instances)
            + len(case.holdout)
        )
        assert len(case.training.instances) >= total * 0.45
        assert len(case.holdout) >= total * 0.2

    def test_case_ground_truth_unrefuted(self):
        case = dbsherlock.build_case("workload_spike", seed=6)
        replay = case.replay_log()
        for cause in case.true_causes:
            assert not replay.refutes(cause)
            assert replay.supports(cause)

    def test_superset_classifier_accuracy_bounds(self):
        case = dbsherlock.build_case("network_congestion", seed=7)
        acc_true = dbsherlock.superset_classifier_accuracy(
            case.true_causes, case.holdout
        )
        acc_none = dbsherlock.superset_classifier_accuracy([], case.holdout)
        assert 0.0 <= acc_none <= 1.0
        assert acc_true >= acc_none  # true causes beat predicting all-normal

    def test_make_session_serves_only_logged_instances(self):
        case = dbsherlock.build_case("db_backup", seed=8)
        session = case.make_session()
        pool_instance = case.budget_pool.instances[0]
        assert session.evaluate(pool_instance) is case.budget_pool.outcome_of(
            pool_instance
        )
        from repro.core.session import InstanceUnavailable

        unseen = Instance({name: 0 for name in case.space.names})
        if case.replay_log().outcome_of(unseen) is None:
            with pytest.raises(InstanceUnavailable):
                session.evaluate(unseen)
