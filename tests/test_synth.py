"""Tests for the synthetic pipeline generator (repro.synth)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Outcome, is_minimal_definitive_root_cause
from repro.synth import (
    Scenario,
    SyntheticConfig,
    generate_pipeline,
    generate_space,
    make_suite,
    scenario_config,
)


class TestGenerateSpace:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_shape_matches_paper_ranges(self, seed):
        config = SyntheticConfig()
        space = generate_space(config, random.Random(seed))
        assert 3 <= len(space) <= 15
        for parameter in space.parameters:
            assert 5 <= len(parameter.domain) <= 30

    def test_deterministic_given_seed(self):
        config = SyntheticConfig()
        first = generate_space(config, random.Random(42))
        second = generate_space(config, random.Random(42))
        assert first.names == second.names
        for name in first.names:
            assert first.domain(name) == second.domain(name)


class TestGeneratePipeline:
    def test_oracle_matches_failure_law(self):
        pipeline = generate_pipeline("p", seed=0)
        rng = random.Random(1)
        for __ in range(200):
            instance = pipeline.space.random_instance(rng)
            expected = pipeline.failure_law.satisfied_by(instance)
            assert (pipeline.oracle(instance) is Outcome.FAIL) == expected

    def test_cause_arities_respected(self):
        config = SyntheticConfig(
            min_parameters=4,
            max_parameters=6,
            min_values=5,
            max_values=8,
            cause_arities=(2, 1),
        )
        pipeline = generate_pipeline("p", config=config, seed=3)
        arities = sorted(len(c) for c in pipeline.true_causes)
        # Resampling may prune an overlapping conjunct, but what remains
        # must be drawn from the requested arities.
        assert arities in ([1, 2], [1], [2])

    def test_initial_history_has_both_outcomes(self):
        pipeline = generate_pipeline("p", seed=5)
        history = pipeline.initial_history(random.Random(0))
        assert history.failures and history.successes

    def test_failing_instance_fails(self):
        pipeline = generate_pipeline("p", seed=7)
        instance = pipeline.failing_instance(random.Random(0))
        assert pipeline.oracle(instance) is Outcome.FAIL

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_planted_causes_verified_minimal_on_small_spaces(self, seed):
        config = SyntheticConfig(
            min_parameters=3,
            max_parameters=4,
            min_values=5,
            max_values=6,
            cause_arities=(1, 2),
        )
        pipeline = generate_pipeline("p", config=config, seed=seed)
        if pipeline.space.size() > config.verify_minimality_up_to:
            return
        for cause in pipeline.true_causes:
            assert is_minimal_definitive_root_cause(
                cause, pipeline.space, pipeline.oracle
            ), str(cause)


class TestScenarios:
    def test_scenario_arities(self):
        rng = random.Random(0)
        assert scenario_config(Scenario.SINGLE_TRIPLE, rng).cause_arities == (1,)
        conj = scenario_config(Scenario.CONJUNCTION, rng).cause_arities
        assert len(conj) == 1 and conj[0] >= 2
        disj = scenario_config(Scenario.DISJUNCTION, rng).cause_arities
        assert len(disj) >= 2

    @pytest.mark.parametrize("scenario", list(Scenario))
    def test_make_suite(self, scenario):
        suite = make_suite(scenario, 3, seed=1)
        assert len(suite) == 3
        names = {p.name for p in suite}
        assert len(names) == 3
        for pipeline in suite:
            assert pipeline.true_causes

    def test_suite_deterministic(self):
        first = make_suite(Scenario.SINGLE_TRIPLE, 2, seed=9)
        second = make_suite(Scenario.SINGLE_TRIPLE, 2, seed=9)
        assert [p.true_causes for p in first] == [p.true_causes for p in second]
