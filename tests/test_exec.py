"""Tests for the process-level execution subsystem (repro.exec).

Four contracts:

1. **Event streams are complete and ordered.**  Per-job events carry
   consecutive ``seq`` numbers, replay from the beginning for late
   subscribers, and always end with a terminal ``finished`` event --
   on success, failure, and cancellation alike.
2. **Process execution is transparent.**  An end-to-end debug run whose
   pipeline executes on worker processes produces byte-identical
   reports and exact per-job budgets vs the in-process backends --
   including under injected worker crashes and per-run timeouts
   (bounded retry on replacement workers).
3. **Faults are contained and accounted.**  A dead or hung worker is
   killed and replaced; a run that ultimately fails surfaces a
   deterministic error whose budget charge is refunded, never a
   corrupted count.
4. **The pool is warm and elastic**: prewarmed workers serve
   immediately, the pool grows under load, shrinks to ``min_workers``
   after the idle timeout, and regrows on demand.
"""

from __future__ import annotations

import os
import random
import threading
import time

import pytest

from repro.core import (
    Algorithm,
    BugDoc,
    DDTConfig,
    DebugSession,
    ExecutionHistory,
    Instance,
    InstanceBudget,
    Outcome,
)
from repro.core.ddt import debugging_decision_trees
from repro.exec import (
    EventBus,
    ExecutorSpec,
    PoolShutDown,
    ProcessPool,
    RemoteRunError,
    RunTimedOut,
    WorkerCrashed,
)
from repro.exec.spec import resolve_reference
from repro.exec.synthetic import build_pipeline, build_space
from repro.pipeline import Module, Workflow
from repro.pipeline.runner import ParallelDebugSession
from repro.provenance import SQLiteProvenanceStore
from repro.service import DebugService, JobGoal, JobSpec, JobStatus

SYNTH = "repro.exec.synthetic:build_pipeline"
SPACE = build_space(n_params=4, domain=4)
FAIL_WHEN = {"p0": 1, "p1": 2}


def synth_spec(**kwargs) -> ExecutorSpec:
    return ExecutorSpec.from_builder(SYNTH, fail_when=FAIL_WHEN, **kwargs)


def seed_history(executor) -> ExecutionHistory:
    """A deterministic informative history: one planted failure plus a
    spread of other instances (some succeed, tree has signal)."""
    history = ExecutionHistory()
    rng = random.Random(11)
    history.record(
        Instance({"p0": 1, "p1": 2, "p2": 0, "p3": 3}), Outcome.FAIL
    )
    for __ in range(8):
        instance = SPACE.random_instance(rng)
        if instance not in history:
            history.record(instance, executor(instance))
    return history


def ddt_fingerprint(session, seed: int = 3):
    """Run DDT FindAll and fingerprint everything report-shaped."""
    result = debugging_decision_trees(
        session,
        DDTConfig(
            find_all=True,
            tests_per_suspect=6,
            exploration_per_round=4,
            max_rounds=20,
            seed=seed,
        ),
    )
    history = session.history
    return (
        tuple(str(c) for c in result.causes),
        str(result.explanation),
        result.instances_executed,
        result.rounds,
        session.budget.spent,
        session.new_executions,
        tuple(
            sorted(
                (repr(i), history.outcome_of(i).value)
                for i in history.instances
            )
        ),
    )


# ---------------------------------------------------------------------------
# Event bus
# ---------------------------------------------------------------------------

class TestEventBus:
    def test_per_job_order_and_replay(self):
        bus = EventBus()
        bus.publish("a", "submitted")
        bus.publish("b", "submitted")
        bus.publish("a", "budget_spent", {"spent": 1})
        bus.publish("a", "finished", {}, close=True)
        bus.publish("b", "finished", {}, close=True)
        events = list(bus.events("a"))
        assert [e.kind for e in events] == [
            "submitted",
            "budget_spent",
            "finished",
        ]
        assert [e.seq for e in events] == [0, 1, 2]
        assert events[-1].terminal
        # Replay is repeatable and complete for late subscribers.
        assert [e.seq for e in bus.events("a")] == [0, 1, 2]
        assert [e.kind for e in bus.events("b")] == ["submitted", "finished"]

    def test_publish_after_close_raises_and_publisher_swallows(self):
        bus = EventBus()
        bus.publish("job", "finished", {}, close=True)
        with pytest.raises(ValueError):
            bus.publish("job", "late")
        bus.publisher("job")("late", {})  # must not raise
        assert [e.kind for e in bus.events("job")] == ["finished"]

    def test_events_blocks_until_terminal(self):
        bus = EventBus()
        seen: list[str] = []

        def consume():
            for event in bus.events("job"):
                seen.append(event.kind)

        thread = threading.Thread(target=consume)
        thread.start()
        time.sleep(0.05)
        bus.publish("job", "started")
        bus.publish("job", "finished", {}, close=True)
        thread.join(5.0)
        assert not thread.is_alive()
        assert seen == ["started", "finished"]

    def test_events_timeout(self):
        bus = EventBus()
        bus.publish("job", "started")
        iterator = bus.events("job", timeout=0.05)
        assert next(iterator).kind == "started"
        with pytest.raises(TimeoutError):
            next(iterator)

    def test_stream_subscription_is_eager(self):
        bus = EventBus()
        stream = bus.stream()  # subscribed here, before any publish
        bus.publish("a", "submitted")
        bus.publish("a", "finished", {}, close=True)
        assert next(stream).kind == "submitted"
        assert next(stream).kind == "finished"
        bus.shutdown()
        assert list(stream) == []

    def test_events_start_past_end_of_closed_log_returns(self):
        bus = EventBus()
        bus.publish("job", "started")
        bus.publish("job", "finished", {}, close=True)
        # start beyond the closed log's end: nothing will ever arrive
        # there, so the iterator must end instead of waiting.
        assert list(bus.events("job", start=2)) == []
        assert list(bus.events("job", start=99)) == []

    def test_events_after_discard_of_closed_log_returns(self):
        bus = EventBus()
        bus.publish("job", "started")
        bus.publish("job", "finished", {}, close=True)
        bus.discard("job")
        # The terminal event passed before the reader attached and the
        # log is gone; without the tombstone this blocked forever.
        assert list(bus.events("job")) == []
        assert list(bus.events("job", start=5)) == []
        # Resubmission under the same id clears the tombstone -- the
        # fresh log replays live again.
        bus.publish("job", "submitted")
        bus.publish("job", "finished", {}, close=True)
        assert [e.kind for e in bus.events("job")] == [
            "submitted",
            "finished",
        ]
        # Discarding an *open* log leaves no tombstone: a brand-new
        # unknown job id must still block (the live-wait contract).
        bus.publish("open-job", "started")
        bus.discard("open-job")
        iterator = bus.events("open-job", timeout=0.05)
        with pytest.raises(TimeoutError):
            next(iterator)


# ---------------------------------------------------------------------------
# Executor specs
# ---------------------------------------------------------------------------

def _gen(x):
    return [x * i for i in range(4)]


def _agg(data, mode):
    return sum(data) if mode == "sum" else max(data)


class TestExecutorSpec:
    def test_from_builder_builds_and_runs(self):
        spec = synth_spec()
        executor = spec.build()
        assert executor(Instance({"p0": 1, "p1": 2, "p2": 0, "p3": 0})) is (
            Outcome.FAIL
        )
        assert executor(Instance({"p0": 0, "p1": 2, "p2": 0, "p3": 0})) is (
            Outcome.SUCCEED
        )

    def test_fingerprint_is_canonical(self):
        a = ExecutorSpec.from_builder(SYNTH, mode="cpu", work_iterations=5)
        b = ExecutorSpec.from_builder(SYNTH, work_iterations=5, mode="cpu")
        c = ExecutorSpec.from_builder(SYNTH, work_iterations=6, mode="cpu")
        assert a == b and a.fingerprint == b.fingerprint
        assert a.fingerprint != c.fingerprint

    def test_bad_reference_errors(self):
        with pytest.raises(ValueError):
            ExecutorSpec(builder="no-colon")
        with pytest.raises(ImportError):
            ExecutorSpec.from_builder("no.such.module:thing").build()
        with pytest.raises(AttributeError):
            ExecutorSpec.from_builder("repro.exec.synthetic:nope").build()
        with pytest.raises(ValueError):
            resolve_reference("missingqualname:")

    def test_from_workflow_roundtrip(self):
        from repro.core import Parameter, ParameterKind, ParameterSpace

        space = ParameterSpace(
            [
                Parameter("x", (1, 2, 3), ParameterKind.ORDINAL),
                Parameter("mode", ("sum", "max")),
            ]
        )
        workflow = Workflow("toy", space, sink=("agg", "out"))
        workflow.add_module(Module("gen", _gen, parameters=("x",)))
        workflow.add_module(
            Module("agg", _agg, inputs=("data",), parameters=("mode",))
        )
        workflow.connect("gen", "out", "agg", "data")
        spec = ExecutorSpec.from_workflow(
            workflow,
            registry={"gen": "test_exec:_gen", "agg": "test_exec:_agg"},
            threshold=4.0,
        )
        executor = spec.build()
        # sum(0+2+4+6)=12 >= 4 -> succeed; max(0,1,2,3)=3 < 4 -> fail.
        assert executor(Instance({"x": 2, "mode": "sum"})) is Outcome.SUCCEED
        assert executor(Instance({"x": 1, "mode": "max"})) is Outcome.FAIL


# ---------------------------------------------------------------------------
# Process pool basics
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def shared_pool():
    """One 2-worker pool shared by the cheap tests (spawn is ~0.2s)."""
    with ProcessPool(max_workers=2, prewarm=1, idle_timeout=120.0) as pool:
        yield pool


class TestProcessPool:
    def test_outcomes_match_in_process(self, shared_pool):
        spec = synth_spec()
        reference = build_pipeline(fail_when=FAIL_WHEN)
        rng = random.Random(0)
        instances = [SPACE.random_instance(rng) for __ in range(6)]
        instances.append(Instance({"p0": 1, "p1": 2, "p2": 3, "p3": 3}))
        for instance in instances:
            assert shared_pool.run(spec, "wf", instance) is reference(instance)

    def test_prewarm_and_executor_adapter(self, shared_pool):
        assert shared_pool.live_workers >= 1
        executor = shared_pool.executor(synth_spec(), workflow="wf")
        assert executor(Instance({"p0": 1, "p1": 2, "p2": 0, "p3": 0})) is (
            Outcome.FAIL
        )

    def test_remote_error_is_contained(self, shared_pool):
        broken = ExecutorSpec.from_builder(SYNTH, mode="no-such-mode")
        instance = Instance({"p0": 0, "p1": 0, "p2": 0, "p3": 0})
        replaced_before = shared_pool.stats()["replaced"]
        with pytest.raises(RemoteRunError):
            shared_pool.run(broken, "wf", instance)
        # The worker answered and survived: no replacement happened and
        # the pool keeps serving healthy runs.
        assert shared_pool.stats()["replaced"] == replaced_before
        assert shared_pool.run(synth_spec(), "wf", instance) is Outcome.SUCCEED

    def test_budget_refunded_on_remote_error(self, shared_pool):
        broken = ExecutorSpec.from_builder(SYNTH, mode="no-such-mode")
        session = DebugSession(
            shared_pool.executor(broken, workflow="wf"),
            SPACE,
            budget=InstanceBudget(5),
        )
        with pytest.raises(RemoteRunError):
            session.evaluate(Instance({"p0": 0, "p1": 0, "p2": 0, "p3": 0}))
        assert session.budget.spent == 0  # charge refunded
        assert session.new_executions == 0

    def test_sqlite_tier_dedupes_across_pools(self, tmp_path):
        db = str(tmp_path / "provenance.db")
        instance = Instance({"p0": 1, "p1": 2, "p2": 1, "p3": 1})
        with ProcessPool(max_workers=1, store_path=db) as first:
            assert first.run(synth_spec(), "wf", instance) is Outcome.FAIL
            assert first.stats()["store_hits"] == 0
        # A different pool (fresh worker processes) sees the outcome
        # through the shared SQLite tier instead of re-executing.
        with ProcessPool(max_workers=1, store_path=db) as second:
            assert second.run(synth_spec(), "wf", instance) is Outcome.FAIL
            assert second.stats()["store_hits"] == 1
        store = SQLiteProvenanceStore(db)
        try:
            assert len(store) == 1
        finally:
            store.close()

    def test_shutdown_rejects_runs(self):
        pool = ProcessPool(max_workers=1)
        pool.shutdown()
        with pytest.raises(PoolShutDown):
            pool.run(
                synth_spec(), "wf", Instance({"p0": 0, "p1": 0, "p2": 0, "p3": 0})
            )

    def test_max_workers_cap_holds_under_concurrent_acquires(self):
        """Racing acquires must not overshoot the hard cap: the slot is
        reserved under the pool lock before the (slow) spawn."""
        spec = synth_spec(mode="sleep", sleep_seconds=0.2)
        rng = random.Random(9)
        with ProcessPool(max_workers=1) as pool:
            threads = [
                threading.Thread(
                    target=pool.run,
                    args=(spec, "wf", SPACE.random_instance(rng)),
                )
                for __ in range(3)
            ]
            for thread in threads:
                thread.start()
            peak = 0
            for __ in range(20):
                peak = max(peak, pool.live_workers)
                time.sleep(0.02)
            for thread in threads:
                thread.join(30.0)
            assert peak == 1
            assert pool.stats()["spawned"] == 1


class TestElasticity:
    def test_grow_shrink_regrow(self):
        with ProcessPool(
            max_workers=2, min_workers=1, prewarm=0, idle_timeout=0.2
        ) as pool:
            spec = synth_spec(mode="sleep", sleep_seconds=0.3)
            rng = random.Random(1)
            instances = [SPACE.random_instance(rng) for __ in range(2)]
            peak = {"workers": 0}

            def run(instance):
                pool.run(spec, "wf", instance)
                peak["workers"] = max(peak["workers"], pool.live_workers)

            threads = [
                threading.Thread(target=run, args=(i,)) for i in instances
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.15)
            peak["workers"] = max(peak["workers"], pool.live_workers)
            for thread in threads:
                thread.join(30.0)
            assert peak["workers"] == 2  # grew under concurrent load
            time.sleep(0.25)
            pool.reap_idle()
            assert pool.live_workers == 1  # shrank to the floor
            assert pool.stats()["retired"] >= 1
            # Regrow on demand: concurrent load is served again.
            threads = [
                threading.Thread(target=run, args=(i,)) for i in instances
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(30.0)
            assert pool.stats()["spawned"] >= 3


# ---------------------------------------------------------------------------
# Fault injection: crashes, timeouts, and exact budgets
# ---------------------------------------------------------------------------

class TestFaultInjection:
    def test_crash_once_retries_and_report_is_identical(self, tmp_path):
        """A worker dying mid-run is replaced; the bounded retry reruns
        the deterministic pipeline, so the end-to-end report and budget
        are byte-identical to a fault-free in-process run."""
        reference = build_pipeline(fail_when=FAIL_WHEN)
        expected = ddt_fingerprint(
            DebugSession(
                build_pipeline(fail_when=FAIL_WHEN),
                SPACE,
                history=seed_history(reference),
            )
        )
        crash_spec = synth_spec(
            crash_on=FAIL_WHEN,
            crash_once_path=str(tmp_path / "crash-once"),
        )
        with ProcessPool(max_workers=2, crash_retries=1) as pool:
            session = pool.session(
                crash_spec,
                SPACE,
                history=seed_history(reference),
                parallel=False,
            )
            assert ddt_fingerprint(session) == expected
            stats = pool.stats()
        assert os.path.exists(tmp_path / "crash-once")  # fault fired
        assert stats["crashes"] == 1
        assert stats["replaced"] == 1
        assert stats["retries"] == 1

    def test_crash_retries_exhausted_refunds_budget(self):
        always_crash = synth_spec(crash_on=FAIL_WHEN)
        with ProcessPool(max_workers=1, crash_retries=1) as pool:
            session = DebugSession(
                pool.executor(always_crash, workflow="wf"),
                SPACE,
                budget=InstanceBudget(5),
            )
            with pytest.raises(WorkerCrashed):
                session.evaluate(Instance({"p0": 1, "p1": 2, "p2": 0, "p3": 0}))
            assert session.budget.spent == 0  # deterministic failed run,
            assert session.new_executions == 0  # never charged
            # The pool recovered: healthy instances still execute.
            assert (
                session.evaluate(Instance({"p0": 0, "p1": 0, "p2": 0, "p3": 0}))
                is Outcome.SUCCEED
            )
            assert session.budget.spent == 1
            assert pool.stats()["crashes"] == 2  # initial + retry

    def test_timeout_kills_hung_worker_and_refunds(self):
        hang = synth_spec(hang_on=FAIL_WHEN, hang_seconds=60.0)
        with ProcessPool(
            max_workers=1, run_timeout=0.5, timeout_retries=0
        ) as pool:
            session = DebugSession(
                pool.executor(hang, workflow="wf"),
                SPACE,
                budget=InstanceBudget(5),
            )
            with pytest.raises(RunTimedOut):
                session.evaluate(Instance({"p0": 1, "p1": 2, "p2": 0, "p3": 0}))
            assert session.budget.spent == 0
            stats = pool.stats()
            assert stats["timeouts"] == 1
            assert stats["replaced"] == 1
            # The hung worker was killed; a replacement serves new runs.
            assert (
                session.evaluate(Instance({"p0": 0, "p1": 0, "p2": 0, "p3": 0}))
                is Outcome.SUCCEED
            )

    def test_hang_once_with_timeout_retry_keeps_report_identical(
        self, tmp_path
    ):
        reference = build_pipeline(fail_when=FAIL_WHEN)
        expected = ddt_fingerprint(
            DebugSession(
                build_pipeline(fail_when=FAIL_WHEN),
                SPACE,
                history=seed_history(reference),
            )
        )
        hang_spec = synth_spec(
            hang_on=FAIL_WHEN,
            hang_once_path=str(tmp_path / "hang-once"),
            hang_seconds=60.0,
        )
        with ProcessPool(
            max_workers=2, run_timeout=1.0, timeout_retries=1
        ) as pool:
            session = pool.session(
                hang_spec,
                SPACE,
                history=seed_history(reference),
                parallel=False,
            )
            assert ddt_fingerprint(session) == expected
            assert pool.stats()["timeouts"] == 1


# ---------------------------------------------------------------------------
# End-to-end differential: process backend vs in-process backends
# ---------------------------------------------------------------------------

class TestProcessBackendDifferential:
    def test_process_backends_match_their_in_process_twins(self):
        """Byte-identical fingerprints between in-process and process
        execution under both dispatch disciplines: a serial session
        (deterministic, early-stopping) and a speculative parallel
        session (whole batches execute, Section 4.3).  Serial and
        parallel legitimately differ from *each other* in execution
        counts -- speculation trades waste for latency -- but must
        agree on the causes."""
        reference = build_pipeline(fail_when=FAIL_WHEN)
        serial_inproc = ddt_fingerprint(
            DebugSession(
                build_pipeline(fail_when=FAIL_WHEN),
                SPACE,
                history=seed_history(reference),
            )
        )
        parallel_threads = ddt_fingerprint(
            ParallelDebugSession(
                build_pipeline(fail_when=FAIL_WHEN),
                SPACE,
                history=seed_history(reference),
                workers=2,
            )
        )
        with ProcessPool(max_workers=2) as pool:
            serial_procs = ddt_fingerprint(
                pool.session(
                    synth_spec(),
                    SPACE,
                    history=seed_history(reference),
                    parallel=False,
                )
            )
            parallel_procs = ddt_fingerprint(
                pool.session(
                    synth_spec(), SPACE, history=seed_history(reference)
                )
            )
            assert pool.stats()["crashes"] == 0
        assert serial_procs == serial_inproc
        assert parallel_procs == parallel_threads
        # Cross-discipline: identical causes and explanation.
        assert parallel_procs[:2] == serial_inproc[:2]

    def test_crash_during_parallel_batch_keeps_report_identical(
        self, tmp_path
    ):
        reference = build_pipeline(fail_when=FAIL_WHEN)
        expected = ddt_fingerprint(
            ParallelDebugSession(
                build_pipeline(fail_when=FAIL_WHEN),
                SPACE,
                history=seed_history(reference),
                workers=2,
            )
        )
        crash_spec = synth_spec(
            crash_on=FAIL_WHEN,
            crash_once_path=str(tmp_path / "crash-once"),
        )
        with ProcessPool(max_workers=2, crash_retries=1) as pool:
            session = pool.session(
                crash_spec, SPACE, history=seed_history(reference)
            )
            assert ddt_fingerprint(session) == expected
            assert pool.stats()["crashes"] == 1


# ---------------------------------------------------------------------------
# Service integration: job events + process jobs + cancellation
# ---------------------------------------------------------------------------

def _in_process_spec(job_id: str, budget=None, **kwargs) -> JobSpec:
    executor = build_pipeline(fail_when=FAIL_WHEN)
    return JobSpec(
        job_id=job_id,
        executor=executor,
        space=SPACE,
        workflow="synthetic",
        algorithm=Algorithm.DECISION_TREES,
        goal=JobGoal.FIND_ALL,
        budget=budget,
        history=seed_history(executor),
        seed=3,
        ddt_config=DDTConfig(
            find_all=True,
            tests_per_suspect=6,
            exploration_per_round=4,
            max_rounds=20,
            seed=3,
        ),
        **kwargs,
    )


class TestServiceEvents:
    def test_stream_is_complete_ordered_and_agrees_with_result(self):
        with DebugService(workers=2) as service:
            handle = service.submit(_in_process_spec("events"))
            result = handle.result(60.0)
            events = list(handle.events())
        assert result.status is JobStatus.SUCCEEDED
        kinds = [e.kind for e in events]
        assert kinds[0] == "submitted"
        assert kinds[1] == "started"
        assert kinds[-1] == "finished"
        assert events[-1].terminal
        assert [e.seq for e in events] == list(range(len(events)))
        # Exactly one budget_spent event per charged execution.
        spends = [e for e in events if e.kind == "budget_spent"]
        assert len(spends) == result.new_executions
        assert spends[-1].payload["spent"] == result.budget_spent
        # The terminal event agrees with the batch summary.
        final = events[-1].payload
        assert final["status"] == "succeeded"
        assert final["budget_spent"] == result.budget_spent
        assert final["causes"] == [str(c) for c in result.report.causes]
        assert any(e.kind == "round_started" for e in events)
        assert any(e.kind == "partial_causes" for e in events)
        # Progress snapshots fold the same stream into current state.
        snapshots = list(handle.progress())
        assert snapshots[-1]["status"] == "succeeded"
        assert snapshots[-1]["causes"] == final["causes"]
        assert snapshots[-1]["budget_spent"] == result.budget_spent

    def test_stream_closes_on_failure(self):
        def explode(session):
            raise RuntimeError("boom")

        with DebugService(workers=1) as service:
            handle = service.submit(
                JobSpec(
                    job_id="fails",
                    executor=build_pipeline(),
                    space=SPACE,
                    run=explode,
                )
            )
            result = handle.result(30.0)
            events = list(handle.events())
        assert result.status is JobStatus.FAILED
        assert events[-1].kind == "finished"
        assert events[-1].payload["status"] == "failed"
        assert "boom" in events[-1].payload["error"]

    def test_cancellation_with_in_flight_process_work(self):
        """Cancel a job whose pipeline runs are live on worker
        processes: in-flight runs complete (and are charged exactly),
        queued ones are refused, the stream closes with CANCELLED."""
        spec = ExecutorSpec.from_builder(
            SYNTH, fail_when=FAIL_WHEN, mode="sleep", sleep_seconds=0.3
        )
        rng = random.Random(5)
        instances = [SPACE.random_instance(rng) for __ in range(8)]

        def body(session):
            for instance in instances:
                session.evaluate(instance)

        with ProcessPool(max_workers=2, prewarm=2) as pool:
            with DebugService(workers=2, pool=pool) as service:
                handle = service.submit(
                    JobSpec(
                        job_id="cancel-me",
                        executor=None,
                        executor_spec=spec,
                        space=SPACE,
                        workflow="sleepy",
                        run=body,
                    )
                )
                # Synchronize on real progress, not wall clock: cancel
                # once the first execution has been charged.
                stream = handle.events(timeout=30.0)
                for event in stream:
                    if event.kind == "budget_spent":
                        break
                assert handle.cancel() is True
                result = handle.result(60.0)
        assert result.status is JobStatus.CANCELLED
        assert result.accounting_settled
        # Exact accounting: only completed runs are charged.
        assert result.budget_spent == result.new_executions
        assert 1 <= result.budget_spent < len(instances)
        events = list(handle.events())
        assert events[-1].kind == "finished"
        assert events[-1].payload["status"] == "cancelled"
        assert events[-1].terminal


class TestServiceProcessJobs:
    def test_process_jobs_match_in_process_reports(self):
        in_process = [
            _in_process_spec("inproc-0"),
            _in_process_spec("inproc-1"),
        ]
        with DebugService(workers=2) as service:
            baseline = service.run_all(in_process, timeout=120.0)
        with ProcessPool(max_workers=2, prewarm=2) as pool:
            with DebugService(workers=2, pool=pool) as service:
                results = service.run_all(
                    [
                        _in_process_spec("proc-0", executor_spec=synth_spec()),
                        _in_process_spec("proc-1", executor_spec=synth_spec()),
                    ],
                    timeout=120.0,
                )
            assert pool.stats()["crashes"] == 0
        for base, proc in zip(baseline, results):
            assert proc.status is JobStatus.SUCCEEDED
            assert [str(c) for c in proc.report.causes] == [
                str(c) for c in base.report.causes
            ]
            assert str(proc.report.explanation) == str(base.report.explanation)
            assert proc.budget_spent == base.budget_spent
            assert proc.new_executions == base.new_executions
            assert proc.cache_stats is not None
            assert proc.cache_stats["requests"] >= proc.cache_stats["executions"]

    def test_executor_spec_without_pool_fails_job(self):
        with DebugService(workers=1) as service:
            handle = service.submit(
                JobSpec(
                    job_id="no-pool",
                    executor=None,
                    executor_spec=synth_spec(),
                    space=SPACE,
                )
            )
            result = handle.result(30.0)
        assert result.status is JobStatus.FAILED
        assert isinstance(result.error, ValueError)

    def test_spec_requires_some_executor(self):
        with pytest.raises(ValueError):
            JobSpec(job_id="neither", executor=None, space=SPACE)

    def test_shutdown_ends_firehose_but_keeps_logs_replayable(self):
        service = DebugService(workers=1)
        stream = service.events.stream()
        handle = service.submit(_in_process_spec("drain"))
        handle.result(60.0)
        service.shutdown()
        # The firehose terminates instead of blocking forever...
        kinds = [event.kind for event in stream]
        assert kinds[-1] == "finished"
        # ...and the per-job log still replays completely afterwards.
        replay = list(handle.events())
        assert replay[0].kind == "submitted"
        assert replay[-1].terminal

    def test_discard_job_frees_handle_and_event_log(self):
        with DebugService(workers=1) as service:
            handle = service.submit(_in_process_spec("discard"))
            handle.result(60.0)
            assert "discard" in service.jobs
            service.discard_job("discard")
            assert "discard" not in service.jobs
            assert service.events.log("discard") == []
            with pytest.raises(KeyError):
                service.discard_job("discard")
