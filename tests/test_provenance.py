"""Tests for provenance records, stores, and logging (repro.provenance)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Comparator,
    Conjunction,
    Evaluation,
    ExecutionHistory,
    Instance,
    Outcome,
    Predicate,
)
from repro.provenance import (
    InMemoryProvenanceStore,
    ProvenanceRecord,
    RecordingExecutor,
    SQLiteProvenanceStore,
    decode_value,
    encode_value,
    read_csv,
    read_jsonl,
    write_csv,
    write_jsonl,
)


class TestValueCodec:
    @pytest.mark.parametrize(
        "value", [1, -7, 3.25, "text", True, False, None, 0, ""]
    )
    def test_roundtrip_scalars(self, value):
        decoded = decode_value(encode_value(value))
        assert decoded == value
        assert type(decoded) is type(value)

    def test_bool_not_confused_with_int(self):
        assert decode_value(encode_value(True)) is True
        assert decode_value(encode_value(1)) == 1
        assert decode_value(encode_value(1)) is not True

    def test_unknown_type_degrades_to_repr(self):
        decoded = decode_value(encode_value(object()))
        assert isinstance(decoded, str)

    @given(st.one_of(st.integers(), st.floats(allow_nan=False), st.text()))
    def test_roundtrip_property(self, value):
        decoded = decode_value(encode_value(value))
        if isinstance(value, float) and math.isinf(value):
            return  # JSON infinity round-trips as float('inf') fine, skip edge
        assert decoded == value


class TestRecord:
    def _record(self):
        return ProvenanceRecord(
            workflow="w",
            instance=Instance({"a": 1, "b": "x"}),
            outcome=Outcome.FAIL,
            result=0.25,
            cost=1.5,
            created_at=100.0,
        )

    def test_json_roundtrip(self):
        record = self._record()
        restored = ProvenanceRecord.from_json(record.to_json())
        assert restored.instance == record.instance
        assert restored.outcome is record.outcome
        assert restored.result == record.result
        assert restored.workflow == record.workflow

    def test_to_evaluation(self):
        evaluation = self._record().to_evaluation()
        assert isinstance(evaluation, Evaluation)
        assert evaluation.failed

    def test_from_evaluation(self):
        evaluation = Evaluation(Instance({"a": 1}), Outcome.SUCCEED, result=9)
        record = ProvenanceRecord.from_evaluation(evaluation, "w", created_at=5.0)
        assert record.outcome is Outcome.SUCCEED
        assert record.created_at == 5.0


@pytest.fixture(params=["memory", "sqlite"])
def store(request, tmp_path):
    if request.param == "memory":
        return InMemoryProvenanceStore()
    return SQLiteProvenanceStore(str(tmp_path / "prov.db"))


class TestStores:
    def _populate(self, store):
        records = [
            ProvenanceRecord(
                "w", Instance({"a": 1, "b": "x"}), Outcome.FAIL, result=0.2
            ),
            ProvenanceRecord(
                "w", Instance({"a": 2, "b": "x"}), Outcome.SUCCEED, result=0.9
            ),
            ProvenanceRecord(
                "other", Instance({"a": 2, "b": "y"}), Outcome.SUCCEED
            ),
        ]
        for record in records:
            store.add(record)
        return records

    def test_add_assigns_ids(self, store):
        self._populate(store)
        ids = [record.record_id for record in store.records()]
        assert ids == [1, 2, 3]
        assert len(store) == 3

    def test_lookup_by_workflow_and_instance(self, store):
        self._populate(store)
        record = store.lookup("w", Instance({"a": 1, "b": "x"}))
        assert record is not None
        assert record.outcome is Outcome.FAIL
        assert record.result == 0.2
        # Same instance under a different workflow is a different key.
        assert store.lookup("other", Instance({"a": 1, "b": "x"})) is None
        assert store.lookup("w", Instance({"a": 9, "b": "x"})) is None

    def test_upsert_inserts_then_converges(self, store):
        instance = Instance({"a": 5, "b": "z"})
        first = store.upsert(
            ProvenanceRecord("w", instance, Outcome.FAIL, result=0.1)
        )
        assert first.record_id is not None
        assert len(store) == 1
        # A second upsert of the same (workflow, instance) is a no-op
        # returning the stored row, regardless of payload differences.
        second = store.upsert(
            ProvenanceRecord("w", instance, Outcome.FAIL, result=0.7)
        )
        assert len(store) == 1
        assert second.record_id == first.record_id
        assert second.result == 0.1

    def test_query_by_outcome(self, store):
        self._populate(store)
        failures = store.query(outcome=Outcome.FAIL)
        assert len(failures) == 1
        assert failures[0].instance == Instance({"a": 1, "b": "x"})

    def test_query_by_predicate(self, store):
        self._populate(store)
        where = Conjunction([Predicate("b", Comparator.EQ, "x")])
        assert len(store.query(where=where)) == 2

    def test_query_by_workflow(self, store):
        self._populate(store)
        assert len(store.query(workflow="other")) == 1

    def test_to_history(self, store):
        self._populate(store)
        history = store.to_history()
        assert len(history.instances) == 3
        assert len(history.failures) == 1

    def test_to_history_filters_workflow(self, store):
        self._populate(store)
        history = store.to_history(workflow="w")
        assert len(history.instances) == 2

    def test_value_universe(self, store):
        self._populate(store)
        universe = store.value_universe()
        assert universe["a"] == {1, 2}
        assert universe["b"] == {"x", "y"}

    def test_count_by_outcome(self, store):
        self._populate(store)
        counts = store.count_by_outcome()
        assert counts[Outcome.FAIL] == 1
        assert counts[Outcome.SUCCEED] == 2


class TestSQLiteSpecific:
    def test_types_roundtrip_through_db(self, tmp_path):
        store = SQLiteProvenanceStore(str(tmp_path / "types.db"))
        instance = Instance({"i": 3, "f": 2.5, "s": "txt", "b": True, "n": None})
        store.add(ProvenanceRecord("w", instance, Outcome.FAIL))
        (record,) = list(store.records())
        assert record.instance == instance
        assert type(record.instance["b"]) is bool

    def test_failing_parameter_value_counts(self, tmp_path):
        store = SQLiteProvenanceStore(str(tmp_path / "agg.db"))
        for a in (1, 1, 2):
            store.add(
                ProvenanceRecord("w", Instance({"a": a}), Outcome.FAIL)
            )
        store.add(ProvenanceRecord("w", Instance({"a": 3}), Outcome.SUCCEED))
        counts = store.failing_parameter_value_counts()
        assert counts[("a", encode_value(1))] == 2
        assert counts[("a", encode_value(2))] == 1

    def test_persistence_across_connections(self, tmp_path):
        path = str(tmp_path / "persist.db")
        first = SQLiteProvenanceStore(path)
        first.add(ProvenanceRecord("w", Instance({"a": 1}), Outcome.FAIL))
        first.close()
        second = SQLiteProvenanceStore(path)
        assert len(second) == 1

    def test_legacy_rows_backfilled_on_open(self, tmp_path):
        """Rows written before the instance_key migration stay findable:
        reopening the database backfills their keys from bindings."""
        path = str(tmp_path / "legacy.db")
        writer = SQLiteProvenanceStore(path)
        instance = Instance({"a": 1, "b": "x"})
        writer.add(ProvenanceRecord("w", instance, Outcome.FAIL, result=0.3))
        # Simulate a pre-migration database, then reopen.
        with writer._lock:  # noqa: SLF001 - test rewinds the schema state
            writer._connection.execute("UPDATE runs SET instance_key = NULL")
            writer._connection.commit()
        writer.close()
        store = SQLiteProvenanceStore(path)
        record = store.lookup("w", instance)
        assert record is not None
        assert record.outcome is Outcome.FAIL
        assert store.lookup("w", Instance({"a": 2, "b": "x"})) is None
        with store._lock:  # noqa: SLF001 - verify the backfill completed
            remaining = store._connection.execute(
                "SELECT COUNT(*) FROM runs WHERE instance_key IS NULL"
            ).fetchone()[0]
        assert remaining == 0


class TestRecordingExecutor:
    def test_records_every_call(self):
        store = InMemoryProvenanceStore()
        clock_values = iter([0.0, 1.0, 2.0, 5.0])

        def oracle(instance):
            return Outcome.FAIL

        recording = RecordingExecutor(
            oracle, store, "wf", clock=lambda: next(clock_values)
        )
        recording(Instance({"a": 1}))
        recording(Instance({"a": 2}))
        records = list(store.records())
        assert len(records) == 2
        assert records[0].cost == 1.0
        assert records[1].cost == 3.0
        assert records[0].workflow == "wf"


class TestLogFiles:
    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        records = [
            ProvenanceRecord("w", Instance({"a": 1}), Outcome.FAIL, result=0.5),
            ProvenanceRecord("w", Instance({"a": 2}), Outcome.SUCCEED),
        ]
        assert write_jsonl(records, path) == 2
        restored = read_jsonl(path)
        assert [r.instance for r in restored] == [r.instance for r in records]
        assert [r.outcome for r in restored] == [r.outcome for r in records]

    def test_csv_roundtrip(self, tmp_path):
        path = tmp_path / "log.csv"
        history = ExecutionHistory.from_pairs(
            [
                (Instance({"a": "1", "b": "x"}), Outcome.FAIL),
                (Instance({"a": "2", "b": "y"}), Outcome.SUCCEED),
            ]
        )
        assert write_csv(history, path) == 2
        restored = read_csv(path)
        assert len(restored.instances) == 2
        assert restored.failures == (Instance({"a": "1", "b": "x"}),)

    def test_empty_csv(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert write_csv(ExecutionHistory(), path) == 0
        assert len(read_csv(path)) == 0


class TestPersistedCodecTables:
    def _space(self):
        from repro.core import Parameter, ParameterKind, ParameterSpace

        return ParameterSpace(
            [
                Parameter("a", (0.5, 1.5, 2.5), ParameterKind.ORDINAL),
                Parameter("b", ("x", "y", "z")),
                Parameter("flag", (False, True)),
            ]
        )

    def test_schema_version_is_bumped(self, tmp_path):
        store = SQLiteProvenanceStore(str(tmp_path / "v6.db"))
        assert store.schema_version == SQLiteProvenanceStore.SCHEMA_VERSION == 6
        store.close()

    def test_save_load_roundtrip_and_interning(self, tmp_path):
        from repro.provenance.store import space_key

        path = str(tmp_path / "codec.db")
        space = self._space()
        store = SQLiteProvenanceStore(path)
        key = store.save_space(space)
        assert key == space_key(space)
        assert store.save_space(space) == key  # idempotent
        assert store.saved_space_keys() == [key]
        # Within a process the registry returns the interned object.
        assert store.load_space(key) is space
        store.close()

        # Warm start: a fresh connection rebuilds identical code tables.
        warm = SQLiteProvenanceStore(path)
        loaded = warm.load_space(key)
        assert loaded is not space
        assert loaded.names == space.names
        for name in space.names:
            assert loaded[name].domain == space[name].domain
            assert loaded[name].kind == space[name].kind
            # The interning tables agree code-for-code.
            for code, value in enumerate(space[name].domain):
                assert loaded[name].code_of(value) == code
        # Repeated loads share one object (no re-interning).
        assert warm.load_space(key) is loaded
        # An equivalent space resolves to the same key (content-derived).
        assert space_key(loaded) == key
        warm.close()

    def test_load_unknown_key_returns_none(self, tmp_path):
        store = SQLiteProvenanceStore(str(tmp_path / "none.db"))
        assert store.load_space("absent") is None
        store.close()

    def test_hydrate_from_v2_database_backfills_encoded_rows(self, tmp_path):
        """A database migrated from v2 has no encoded rows; the first
        hydration decodes, writes the rows through, and the second one
        serves from codes."""
        path = str(tmp_path / "backfill.db")
        space = self._space()
        store = SQLiteProvenanceStore(path)
        store.add(
            ProvenanceRecord(
                "wf", Instance({"a": 0.5, "b": "x", "flag": True}), Outcome.FAIL
            )
        )
        # Rewind to a v2-shaped database: drop the encoded-row table.
        with store._lock:  # noqa: SLF001 - test rewinds the schema state
            store._connection.execute("DROP TABLE encoded_runs")
            store._connection.execute("PRAGMA user_version = 2")
            store._connection.commit()
        store.close()

        reopened = SQLiteProvenanceStore(path)
        assert (
            reopened.schema_version == SQLiteProvenanceStore.SCHEMA_VERSION
        )  # migrated in place
        interned, history = reopened.hydrate("wf", space)
        assert len(history) == 1
        with reopened._lock:  # noqa: SLF001 - verify the write-through
            (count,) = reopened._connection.execute(
                "SELECT COUNT(*) FROM encoded_runs"
            ).fetchone()
        assert count == 1
        reopened.close()

    def test_hydrate_presyncs_columnar_store(self, tmp_path):
        path = str(tmp_path / "hydrate.db")
        space = self._space()
        store = SQLiteProvenanceStore(path)
        instances = [
            Instance({"a": 0.5, "b": "x", "flag": False}),
            Instance({"a": 1.5, "b": "y", "flag": True}),
            Instance({"a": 2.5, "b": "z", "flag": True}),
        ]
        for index, instance in enumerate(instances):
            store.add(
                ProvenanceRecord(
                    workflow="wf",
                    instance=instance,
                    outcome=Outcome.FAIL if index == 0 else Outcome.SUCCEED,
                )
            )
        store.save_space(space)
        store.close()

        warm = SQLiteProvenanceStore(path)
        interned, history = warm.hydrate(
            "wf", warm.load_space(warm.saved_space_keys()[0])
        )
        assert len(history) == len(instances)
        columnar = history.columnar_store(interned)
        assert columnar.n_rows == len(instances)
        assert not columnar.degraded
        # A second hydration shares the interned space object, so the
        # history's incremental store stays valid across sessions.
        interned_again, __ = warm.hydrate("wf", self._space())
        assert interned_again is interned
        warm.close()


class TestEncodedRows:
    """Schema v3: per-run encoded code tuples and zero-encode hydration."""

    def _space(self):
        from repro.core import Parameter, ParameterKind, ParameterSpace

        return ParameterSpace(
            [
                Parameter("a", (0.5, 1.5, 2.5), ParameterKind.ORDINAL),
                Parameter("b", ("x", "y", "z")),
                Parameter("flag", (False, True)),
            ]
        )

    def _populated(self, path, n=6, workflow="wf"):
        import random

        store = SQLiteProvenanceStore(path)
        space = self._space()
        rng = random.Random(7)
        for index in range(n):
            instance = space.random_instance(rng)
            store.add(
                ProvenanceRecord(
                    workflow=workflow,
                    instance=instance,
                    outcome=Outcome.FAIL if index % 3 == 0 else Outcome.SUCCEED,
                    result=0.1 * index,
                    cost=float(index),
                )
            )
        return store, space

    def test_save_encoded_rows_idempotent_and_incremental(self, tmp_path):
        store, space = self._populated(str(tmp_path / "enc.db"), n=4)
        assert store.save_encoded_rows("wf", space) == 4
        assert store.save_encoded_rows("wf", space) == 0  # nothing pending
        store.add(
            ProvenanceRecord(
                "wf", Instance({"a": 0.5, "b": "z", "flag": False}), Outcome.FAIL
            )
        )
        assert store.save_encoded_rows("wf", space) == 1  # only the new run
        store.close()

    def test_unencodable_rows_are_skipped(self, tmp_path):
        store, space = self._populated(str(tmp_path / "skip.db"), n=2)
        store.add(
            ProvenanceRecord(
                "wf", Instance({"a": 99.0, "b": "x", "flag": True}), Outcome.FAIL
            )
        )
        assert store.save_encoded_rows("wf", space) == 2  # bad row skipped
        # Partial coverage keeps hydrate on the decode path (and the
        # columnar store degrades exactly as live encoding would).
        interned, history = store.hydrate("wf", space)
        assert len(history) == 3
        assert history.columnar_store(interned).degraded
        store.close()

    def test_hydrate_from_codes_matches_reencoding(self, tmp_path):
        path = str(tmp_path / "match.db")
        store, space = self._populated(path, n=8)
        cold_interned, cold_history = store.hydrate("wf", space)  # writes through
        store.close()

        warm = SQLiteProvenanceStore(path)
        warm_interned, warm_history = warm.hydrate("wf", self._space())
        assert [e.instance for e in warm_history] == [
            e.instance for e in cold_history
        ]
        assert [e.outcome for e in warm_history] == [
            e.outcome for e in cold_history
        ]
        assert [e.result for e in warm_history] == [
            e.result for e in cold_history
        ]
        assert [e.cost for e in warm_history] == [e.cost for e in cold_history]
        cold_store = cold_history.columnar_store(cold_interned)
        warm_store = warm_history.columnar_store(warm_interned)
        assert warm_store.row_codes == cold_store.row_codes
        assert warm_store.fail_mask == cold_store.fail_mask
        assert warm_store.all_mask == cold_store.all_mask
        assert warm_store.value_rows == cold_store.value_rows
        assert not warm_store.degraded
        warm.close()

    def test_warm_hydration_performs_zero_encode_calls(self, tmp_path, monkeypatch):
        from repro.core.engine import SpaceCodec

        path = str(tmp_path / "zero.db")
        store, space = self._populated(path, n=6)
        store.hydrate("wf", space)  # cold pass persists the encoded rows
        store.close()

        calls = {"encode": 0}
        original = SpaceCodec.encode

        def counting_encode(self, instance):
            calls["encode"] += 1
            return original(self, instance)

        monkeypatch.setattr(SpaceCodec, "encode", counting_encode)
        warm = SQLiteProvenanceStore(path)
        interned, history = warm.hydrate("wf", self._space())
        columnar = history.columnar_store(interned)
        assert columnar.n_rows == len(history.instances) > 0
        assert not columnar.degraded
        assert calls["encode"] == 0  # the warm path never encodes
        warm.close()

    def test_hydrate_survives_and_repairs_corrupt_codes(self, tmp_path):
        from repro.core.engine import SpaceCodec

        path = str(tmp_path / "corrupt.db")
        store, space = self._populated(path, n=3)
        store.hydrate("wf", space)
        with store._lock:  # noqa: SLF001 - simulate on-disk corruption
            store._connection.execute(
                "UPDATE encoded_runs SET codes = '[999, 999, 999]'"
            )
            store._connection.commit()
        store.close()

        reopened = SQLiteProvenanceStore(path)
        interned, history = reopened.hydrate("wf", self._space())
        assert len(history) == 3  # decode path took over
        assert not history.columnar_store(interned).degraded
        reopened.close()

        # The corrupt rows were purged and re-encoded by the fallback
        # hydrate, so the warm path is healed: a fresh connection
        # hydrates from codes again (zero encode calls).
        calls = {"encode": 0}
        original = SpaceCodec.encode

        def counting_encode(self, instance):
            calls["encode"] += 1
            return original(self, instance)

        healed = SQLiteProvenanceStore(path)
        try:
            SpaceCodec.encode = counting_encode
            interned, history = healed.hydrate("wf", self._space())
        finally:
            SpaceCodec.encode = original
        assert len(history) == 3
        assert not history.columnar_store(interned).degraded
        assert calls["encode"] == 0
        healed.close()
