"""Tests for the Shortcut algorithm, including the paper's worked examples
(Example 1-3) and its Theorems 1-3 as property-based tests."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Comparator,
    Conjunction,
    DebugSession,
    ExecutionHistory,
    Instance,
    InstanceBudget,
    Outcome,
    Parameter,
    ParameterSpace,
    Predicate,
    conjunction_from_assignment,
    select_good_instance,
    shortcut,
)


def _session(oracle, space, history=None, budget=None):
    return DebugSession(oracle, space, history=history, budget=budget)


class TestExample1:
    """The paper's Table 1/2 walk-through."""

    def test_shortcut_finds_library_version(self, ml_space, ml_oracle, table1_history):
        session = _session(ml_oracle, ml_space, table1_history)
        failing = table1_history.failures[0]
        good = select_good_instance(session, failing)
        assert good == Instance(
            {
                "dataset": "digits",
                "estimator": "decision_tree",
                "library_version": "1.0",
            }
        )
        result = shortcut(session, failing, good)
        assert result.asserted
        assert result.cause == conjunction_from_assignment(
            {"library_version": "2.0"}
        )

    def test_example1_executes_exactly_table2_new_instances(
        self, ml_space, ml_oracle, table1_history
    ):
        """Table 2 shows the 3 new instances Shortcut created; the third
        duplicates a given one, so only 2 are charged."""
        session = _session(ml_oracle, ml_space, table1_history)
        failing = table1_history.failures[0]
        good = select_good_instance(session, failing)
        result = shortcut(session, failing, good)
        assert result.instances_executed == 2
        executed = set(session.history.instances) - {
            instance for instance, __ in _table1_raw()
        }
        assert executed == {
            Instance(
                {
                    "dataset": "digits",
                    "estimator": "gradient_boosting",
                    "library_version": "2.0",
                }
            ),
            Instance(
                {
                    "dataset": "digits",
                    "estimator": "decision_tree",
                    "library_version": "2.0",
                }
            ),
        }


def _table1_raw():
    return [
        (
            Instance(
                {
                    "dataset": "iris",
                    "estimator": "logistic_regression",
                    "library_version": "1.0",
                }
            ),
            Outcome.SUCCEED,
        ),
        (
            Instance(
                {
                    "dataset": "digits",
                    "estimator": "decision_tree",
                    "library_version": "1.0",
                }
            ),
            Outcome.SUCCEED,
        ),
        (
            Instance(
                {
                    "dataset": "iris",
                    "estimator": "gradient_boosting",
                    "library_version": "2.0",
                }
            ),
            Outcome.FAIL,
        ),
    ]


class TestExample2Truncation:
    """Example 2: overlapping causes make Shortcut truncate."""

    def _setup(self):
        space = ParameterSpace(
            [
                Parameter("p1", ("v1", "v1p")),
                Parameter("p2", ("v2", "v2p")),
                Parameter("p3", ("v3", "v3p")),
            ]
        )
        d1 = Conjunction(
            [
                Predicate("p1", Comparator.EQ, "v1"),
                Predicate("p2", Comparator.EQ, "v2"),
            ]
        )
        d2 = Conjunction(
            [
                Predicate("p1", Comparator.EQ, "v1p"),
                Predicate("p3", Comparator.EQ, "v3"),
            ]
        )

        def oracle(instance):
            return (
                Outcome.FAIL
                if d1.satisfied_by(instance) or d2.satisfied_by(instance)
                else Outcome.SUCCEED
            )

        failing = Instance({"p1": "v1", "p2": "v2", "p3": "v3"})
        good = Instance({"p1": "v1p", "p2": "v2p", "p3": "v3p"})
        return space, oracle, failing, good

    def test_truncated_assertion_reproduced(self):
        space, oracle, failing, good = self._setup()
        history = ExecutionHistory.from_pairs(
            [(failing, Outcome.FAIL), (good, Outcome.SUCCEED)]
        )
        session = _session(oracle, space, history)
        result = shortcut(session, failing, good, sanity_check=False)
        # The paper's trace: p3=v3 survives alone -- a proper subset of D2.
        assert result.surviving_assignment == {"p3": "v3"}

    def test_union_property_theorem_4(self):
        """Truncation happened, so some minimal cause lies in CPf u CPg."""
        space, oracle, failing, good = self._setup()
        d2 = Conjunction(
            [
                Predicate("p1", Comparator.EQ, "v1p"),
                Predicate("p3", Comparator.EQ, "v3"),
            ]
        )
        union = dict(failing)
        union_values = {(k, v) for k, v in failing.items()} | {
            (k, v) for k, v in good.items()
        }
        assert all(
            (p.parameter, p.value) in union_values for p in d2.predicates
        )
        del union


class TestExample3SufficientlyDifferent:
    """Example 3: sufficiently-different causes avoid truncation."""

    def test_no_truncation(self):
        space = ParameterSpace(
            [
                Parameter("p1", ("v1", "v1p")),
                Parameter("p2", ("v2", "v2p", "v2pp")),
                Parameter("p3", ("v3", "v3p")),
            ]
        )
        d1 = Conjunction(
            [
                Predicate("p1", Comparator.EQ, "v1"),
                Predicate("p2", Comparator.EQ, "v2"),
            ]
        )
        d2 = Conjunction(
            [
                Predicate("p1", Comparator.EQ, "v1p"),
                Predicate("p2", Comparator.EQ, "v2pp"),
                Predicate("p3", Comparator.EQ, "v3"),
            ]
        )

        def oracle(instance):
            return (
                Outcome.FAIL
                if d1.satisfied_by(instance) or d2.satisfied_by(instance)
                else Outcome.SUCCEED
            )

        failing = Instance({"p1": "v1", "p2": "v2", "p3": "v3"})
        good = Instance({"p1": "v1p", "p2": "v2p", "p3": "v3p"})
        history = ExecutionHistory.from_pairs(
            [(failing, Outcome.FAIL), (good, Outcome.SUCCEED)]
        )
        session = _session(oracle, space, history)
        result = shortcut(session, failing, good)
        assert result.cause == d1


class TestMechanics:
    def test_missing_parameter_rejected(self, mixed_space):
        session = _session(lambda i: Outcome.FAIL, mixed_space)
        with pytest.raises(ValueError, match="lacks parameters"):
            shortcut(
                session,
                Instance({"a": 0}),
                Instance({"a": 1, "b": "x", "c": 0.0}),
            )

    def test_sanity_check_rejects_superset_success(self, mixed_space):
        """Algorithm 1's final loop: D contained in a success -> empty."""

        def oracle(instance):
            # Fails only in a corner the walk cannot justify cleanly.
            return (
                Outcome.FAIL
                if instance["a"] == 0 and instance["b"] == "x"
                else Outcome.SUCCEED
            )

        failing = Instance({"a": 0, "b": "x", "c": 0.0})
        good = Instance({"a": 1, "b": "y", "c": 1.0})
        # A success containing a=0 (the candidate D after a bad walk).
        extra_success = Instance({"a": 0, "b": "z", "c": 0.0})
        history = ExecutionHistory.from_pairs(
            [
                (failing, Outcome.FAIL),
                (good, Outcome.SUCCEED),
                (extra_success, Outcome.SUCCEED),
            ]
        )
        session = _session(oracle, mixed_space, history)
        result = shortcut(session, failing, good)
        # Either a correct assertion or a sanity-check rejection; never a
        # cause contained in a known success.
        if result.asserted:
            for success in session.history.successes:
                assert not result.cause.satisfied_by(success)

    def test_budget_exhaustion_marks_incomplete(self, mixed_space):
        def oracle(instance):
            return Outcome.FAIL if instance["a"] == 0 else Outcome.SUCCEED

        failing = Instance({"a": 0, "b": "x", "c": 0.0})
        good = Instance({"a": 1, "b": "y", "c": 1.0})
        history = ExecutionHistory.from_pairs(
            [(failing, Outcome.FAIL), (good, Outcome.SUCCEED)]
        )
        session = _session(oracle, mixed_space, history, InstanceBudget(1))
        result = shortcut(session, failing, good)
        assert not result.complete

    def test_linear_cost_in_parameters(self):
        """At most |P| new executions (Section 4.1)."""
        names = [f"p{i}" for i in range(12)]
        space = ParameterSpace([Parameter(n, (0, 1)) for n in names])

        def oracle(instance):
            return Outcome.FAIL if instance["p3"] == 0 else Outcome.SUCCEED

        failing = Instance({n: 0 for n in names})
        good = Instance({n: 1 for n in names})
        history = ExecutionHistory.from_pairs(
            [(failing, Outcome.FAIL), (good, Outcome.SUCCEED)]
        )
        session = _session(oracle, space, history)
        result = shortcut(session, failing, good)
        assert result.instances_executed <= len(names)
        assert result.cause == conjunction_from_assignment({"p3": 0})


# -- Theorems 1-3 as properties ------------------------------------------------


@st.composite
def _singleton_cause_problem(draw):
    """Random space with singleton equality causes + disjoint CPf/CPg."""
    n_params = draw(st.integers(3, 6))
    domain_size = draw(st.integers(2, 4))
    space = ParameterSpace(
        [Parameter(f"p{i}", tuple(range(domain_size))) for i in range(n_params)]
    )
    n_causes = draw(st.integers(1, 2))
    cause_params = draw(
        st.lists(
            st.integers(0, n_params - 1),
            min_size=n_causes,
            max_size=n_causes,
            unique=True,
        )
    )
    causes = [
        Conjunction([Predicate(f"p{i}", Comparator.EQ, 0)]) for i in cause_params
    ]
    failing = Instance({f"p{i}": 0 for i in range(n_params)})
    good = Instance({f"p{i}": 1 for i in range(n_params)})
    return space, causes, failing, good


@settings(max_examples=60, deadline=None)
@given(_singleton_cause_problem())
def test_theorem_1_singleton_causes_found_exactly(problem):
    """Singleton causes + disjointness -> exactly one minimal cause asserted."""
    space, causes, failing, good = problem

    def oracle(instance):
        return (
            Outcome.FAIL
            if any(c.satisfied_by(instance) for c in causes)
            else Outcome.SUCCEED
        )

    history = ExecutionHistory.from_pairs(
        [(failing, Outcome.FAIL), (good, Outcome.SUCCEED)]
    )
    session = DebugSession(oracle, space, history=history)
    result = shortcut(session, failing, good)
    assert result.asserted
    assert result.cause in causes


@st.composite
def _random_conjunction_problem(draw):
    """Random equality-conjunction causes with a guaranteed disjoint pair."""
    n_params = draw(st.integers(3, 5))
    space = ParameterSpace(
        [Parameter(f"p{i}", (0, 1, 2)) for i in range(n_params)]
    )
    n_causes = draw(st.integers(1, 2))
    causes = []
    for __ in range(n_causes):
        arity = draw(st.integers(1, min(2, n_params)))
        params = draw(
            st.lists(
                st.integers(0, n_params - 1),
                min_size=arity,
                max_size=arity,
                unique=True,
            )
        )
        causes.append(
            Conjunction(
                [Predicate(f"p{i}", Comparator.EQ, 0) for i in params]
            )
        )
    failing = Instance({f"p{i}": 0 for i in range(n_params)})
    good = Instance({f"p{i}": 1 for i in range(n_params)})
    return space, causes, failing, good


@settings(max_examples=60, deadline=None)
@given(_random_conjunction_problem())
def test_theorem_2_never_asserts_superset(problem):
    """Under disjointness, the assertion is never a strict superset of a
    minimal definitive root cause."""
    space, causes, failing, good = problem

    def oracle(instance):
        return (
            Outcome.FAIL
            if any(c.satisfied_by(instance) for c in causes)
            else Outcome.SUCCEED
        )

    history = ExecutionHistory.from_pairs(
        [(failing, Outcome.FAIL), (good, Outcome.SUCCEED)]
    )
    session = DebugSession(oracle, space, history=history)
    result = shortcut(session, failing, good, sanity_check=False)
    asserted = set(result.cause.predicates)
    for cause in causes:
        cause_predicates = set(cause.predicates)
        assert not (
            cause_predicates < asserted
        ), f"asserted {result.cause} is a strict superset of {cause}"


def test_theorem_3_sufficiently_different_no_truncation():
    """Deterministic re-check of Example 3 over many parameter orders."""
    space = ParameterSpace(
        [
            Parameter("p1", (0, 1)),
            Parameter("p2", (0, 1, 2)),
            Parameter("p3", (0, 1)),
        ]
    )
    d1 = Conjunction(
        [Predicate("p1", Comparator.EQ, 0), Predicate("p2", Comparator.EQ, 0)]
    )
    d2 = Conjunction(
        [
            Predicate("p1", Comparator.EQ, 1),
            Predicate("p2", Comparator.EQ, 2),
            Predicate("p3", Comparator.EQ, 0),
        ]
    )

    def oracle(instance):
        return (
            Outcome.FAIL
            if d1.satisfied_by(instance) or d2.satisfied_by(instance)
            else Outcome.SUCCEED
        )

    failing = Instance({"p1": 0, "p2": 0, "p3": 0})
    good = Instance({"p1": 1, "p2": 1, "p3": 1})
    import itertools

    for order in itertools.permutations(["p1", "p2", "p3"]):
        history = ExecutionHistory.from_pairs(
            [(failing, Outcome.FAIL), (good, Outcome.SUCCEED)]
        )
        session = DebugSession(oracle, space, history=history)
        result = shortcut(session, failing, good, parameter_order=order)
        assert result.cause == d1, f"truncated under order {order}"
