"""Tests for the HTTP/JSON service front-end (repro.service.http) --
the in-process API surface (submit/status/cancel, NDJSON/SSE event
streams, tenant quotas, /query) and the kill -9 restart-resume
guarantee of `repro serve --http` over the durable job queue."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.core import Instance, Outcome, Parameter, ParameterSpace
from repro.exec import ExecutorSpec
from repro.provenance import SQLiteProvenanceStore
from repro.service import (
    DebugService,
    DebugServiceHTTP,
    TenantQuota,
    space_to_payload,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _space() -> ParameterSpace:
    return ParameterSpace(
        [
            Parameter("a", (0, 1, 2, 3)),
            Parameter("b", ("x", "y")),
        ]
    )


def _oracle(instance: Instance) -> Outcome:
    return Outcome.FAIL if instance["a"] == 0 else Outcome.SUCCEED


def make_http_oracle():
    """Importable executor builder (resolved via this test module)."""
    return _oracle


def make_slow_oracle(delay=0.2):
    """Oracle with a per-execution sleep: keeps a job reliably live
    while a test probes its in-flight behavior (409s, quotas, cancel)."""
    def slow(instance: Instance) -> Outcome:
        time.sleep(delay)
        return _oracle(instance)

    return slow


def _payload(job_id: str, **extra) -> dict:
    payload = {
        "job_id": job_id,
        "workflow": extra.pop("workflow", "http"),
        "algorithm": "decision_trees",
        "goal": "find_all",
        "budget": 40,
        "executor_spec": ExecutorSpec.from_builder(
            "test_http_service:make_http_oracle"
        ).to_wire(),
        "space": space_to_payload(_space()),
    }
    payload.update(extra)
    return payload


def _get(port: int, path: str, headers: dict | None = None):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", headers=headers or {}
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, response.read()


def _post(port: int, path: str, payload: dict):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture
def api(tmp_path):
    store = SQLiteProvenanceStore(tmp_path / "http.db")
    service = DebugService(
        workers=2, store=store, weighted_fairness=True, max_concurrent_jobs=2
    )
    api = DebugServiceHTTP(
        service,
        store=store,
        quotas={
            "capped": TenantQuota(max_active=1, priority=2),
            "blocked": TenantQuota(max_active=0),
        },
    )
    api.start()
    yield api
    api.shutdown()
    service.shutdown()
    store.close()


class TestHTTPAPI:
    def test_health_and_stats(self, api):
        status, body = _get(api.port, "/healthz")
        assert (status, json.loads(body)) == (200, {"status": "ok"})
        status, body = _get(api.port, "/stats")
        assert status == 200
        assert "admission" in json.loads(body)

    def test_submit_stream_and_detail(self, api):
        status, accepted = _post(api.port, "/jobs", _payload("j1"))
        assert status == 201
        assert accepted["job_id"] == "j1"
        assert accepted["durable"] is True

        # NDJSON stream rides the bus to the terminal event.
        status, body = _get(api.port, "/jobs/j1/events?timeout=30")
        lines = [json.loads(line) for line in body.decode().splitlines()]
        assert status == 200
        assert lines[0]["kind"] == "submitted"
        assert lines[-1]["kind"] == "finished"
        assert lines[-1]["terminal"] is True
        # seq-prefix completeness: no gaps in the replayed stream.
        assert [line["seq"] for line in lines] == list(range(len(lines)))

        # Terminal detail is served from the persisted record.
        status, body = _get(api.port, "/jobs/j1")
        detail = json.loads(body)
        assert status == 200
        assert detail["status"] == "succeeded"
        assert detail["causes"] and "a" in detail["causes"][0]
        assert detail["new_executions"] >= 1

        status, body = _get(api.port, "/jobs")
        assert status == 200
        assert [job["job_id"] for job in json.loads(body)] == ["j1"]

    def test_sse_stream_frames_events(self, api):
        _post(api.port, "/jobs", _payload("sse"))
        status, body = _get(
            api.port,
            "/jobs/sse/events?timeout=30",
            headers={"Accept": "text/event-stream"},
        )
        assert status == 200
        frames = [f for f in body.decode().split("\n\n") if f]
        assert frames[0].startswith("event: submitted\ndata: ")
        assert frames[-1].startswith("event: finished\ndata: ")
        json.loads(frames[-1].splitlines()[1].removeprefix("data: "))

    def test_unknown_routes_and_jobs_are_404(self, api):
        for path in ("/nope", "/jobs/missing", "/jobs/missing/events"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(api.port, path)
            assert excinfo.value.code == 404

    def test_malformed_submissions_are_400(self, api):
        status, body = _post(api.port, "/jobs", {"workflow": "x"})
        assert status == 400
        assert "job_id" in body["error"]
        payload = _payload("bad")
        del payload["executor_spec"]
        status, body = _post(api.port, "/jobs", payload)
        assert status == 400

    def test_live_duplicate_conflicts_terminal_duplicate_replaces(self, api):
        slow = ExecutorSpec.from_builder(
            "test_http_service:make_slow_oracle"
        ).to_wire()
        # Live duplicate: the slow job is reliably in flight when the
        # duplicate arrives.
        status, _ = _post(
            api.port, "/jobs", _payload("dup2", executor_spec=slow)
        )
        assert status == 201
        status, body = _post(api.port, "/jobs", _payload("dup2"))
        assert status == 409
        assert "dup2" in body["error"]
        # Terminal duplicate: latest-wins resubmission is accepted.
        _post(api.port, "/jobs", _payload("dup"))
        _get(api.port, "/jobs/dup/events?timeout=30")
        status, body = _post(api.port, "/jobs", _payload("dup"))
        assert status == 201

    def test_tenant_quota_enforced_and_priority_capped(self, api):
        status, body = _post(
            api.port, "/jobs", _payload("q0", tenant="blocked")
        )
        assert status == 429
        assert "quota" in body["error"]

        # priority requests are capped at the tenant's quota priority.
        slow = ExecutorSpec.from_builder(
            "test_http_service:make_slow_oracle"
        ).to_wire()
        status, body = _post(
            api.port,
            "/jobs",
            _payload("q1", tenant="capped", priority=99, executor_spec=slow),
        )
        assert status == 201
        assert body["priority"] == 2
        # Second in-flight job for the capped tenant hits max_active=1
        # while the slow job is live.
        status, body = _post(
            api.port, "/jobs", _payload("q2", tenant="capped")
        )
        assert status == 429
        # Other tenants are unaffected by that tenant's quota.
        status, body = _post(
            api.port, "/jobs", _payload("q3", tenant="other")
        )
        assert status == 201

    def test_cancel_endpoint(self, api):
        slow = ExecutorSpec.from_builder(
            "test_http_service:make_slow_oracle"
        ).to_wire()
        _post(api.port, "/jobs", _payload("c1", executor_spec=slow))
        status, body = _post(api.port, "/jobs/c1/cancel", {})
        assert status == 200
        assert body["job_id"] == "c1"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(api.port, "/jobs/missing/cancel")
        assert excinfo.value.code == 404

    def test_query_endpoint_delegates_to_engine(self, api):
        _post(api.port, "/jobs", _payload("qq", workflow="wq"))
        _get(api.port, "/jobs/qq/events?timeout=30")

        status, body = _get(api.port, "/query?op=jobs")
        jobs = json.loads(body)["jobs"]
        assert status == 200
        assert [job["job_id"] for job in jobs] == ["qq"]

        status, body = _get(
            api.port,
            "/query?op=agg&metric=budget_spent&stat=count&group_by=workflow",
        )
        agg = json.loads(body)
        assert status == 200
        assert agg["groups"]["wq"]["jobs"] == 1

        status, body = _get(
            api.port, "/query?op=events&kind=finished&limit=5"
        )
        events = json.loads(body)
        assert status == 200
        assert events["count"] == 1
        assert events["events"][0]["kind"] == "finished"

        status, body = _get(
            api.port, "/query?op=seq&pattern=submitted&pattern=finished"
        )
        assert json.loads(body)["count"] == 1

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(api.port, "/query?op=agg")  # agg without metric
        assert excinfo.value.code == 400


SLEEPY_WORKLOAD = '''\
"""Marker-file workload for the restart-resume test: every pipeline
execution appends its instance to a per-job marker file, so the test
can count real executions across service incarnations."""

import time

from repro.core import Instance, Outcome


def make_executor(marker=None, delay=0.0):
    def executor(instance: Instance) -> Outcome:
        if marker:
            with open(marker, "a") as handle:
                handle.write(
                    ",".join(f"{k}={instance[k]}" for k in sorted(instance))
                    + "\\n"
                )
        if delay:
            time.sleep(delay)
        return Outcome.FAIL if instance["a"] == 0 else Outcome.SUCCEED

    return executor
'''


def _marker_lines(path: Path) -> list[str]:
    if not path.exists():
        return []
    return path.read_text().splitlines()


class TestRestartResume:
    """Satellite 4 / the PR's acceptance criterion: a kill -9'd
    `repro serve --http` restarted on the same store resumes every
    queued job exactly once and serves byte-identical results for
    already-finished jobs."""

    @staticmethod
    def _launch(db: Path, env: dict):
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--http",
                "0",
                "--store",
                str(db),
                "--workers",
                "1",
            ],
            stdout=subprocess.PIPE,
            cwd=REPO_ROOT,
            env=env,
            text=True,
        )
        banner = json.loads(process.stdout.readline())["serving"]
        return process, banner

    @staticmethod
    def _sleepy_payload(job_id: str, marker: Path, delay: float, **extra):
        space = ParameterSpace(
            [
                Parameter("a", tuple(range(10))),
                Parameter("b", tuple(range(10))),
            ]
        )
        payload = {
            "job_id": job_id,
            "workflow": job_id,
            "algorithm": "decision_trees",
            "goal": "find_all",
            "budget": 25,
            "executor_spec": ExecutorSpec.from_builder(
                "sleepy_workload:make_executor",
                marker=str(marker),
                delay=delay,
            ).to_wire(),
            "space": space_to_payload(space),
        }
        payload.update(extra)
        return payload

    def test_sigkill_restart_resumes_queued_jobs_exactly_once(
        self, tmp_path
    ):
        (tmp_path / "sleepy_workload.py").write_text(SLEEPY_WORKLOAD)
        db = tmp_path / "serve.db"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src"), str(tmp_path)]
        )
        fin_marker = tmp_path / "fin.marker"
        stuck_marker = tmp_path / "stuck.marker"
        queued_marker = tmp_path / "queued.marker"

        process, banner = self._launch(db, env)
        try:
            port = banner["port"]
            assert banner["durable"] is True

            # fin: completes and streams before the crash.
            status, _ = _post(
                port, "/jobs", self._sleepy_payload("fin", fin_marker, 0.0)
            )
            assert status == 201
            _get(port, "/jobs/fin/events?timeout=60")
            status, fin_before = _get(port, "/jobs/fin")
            assert status == 200
            assert json.loads(fin_before)["status"] == "succeeded"
            fin_runs_before = _marker_lines(fin_marker)
            assert fin_runs_before

            # stuck: slow job hogging the single worker when the
            # service dies; queued: admitted behind it, never started.
            status, _ = _post(
                port,
                "/jobs",
                self._sleepy_payload("stuck", stuck_marker, 0.15, budget=30),
            )
            assert status == 201
            status, _ = _post(
                port,
                "/jobs",
                self._sleepy_payload("queued", queued_marker, 0.0),
            )
            assert status == 201

            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if _marker_lines(stuck_marker):
                    break
                time.sleep(0.05)
            assert _marker_lines(stuck_marker), "stuck job never started"
            # The queued job must still be waiting for the worker.
            assert _marker_lines(queued_marker) == []
            status, body = _get(port, "/jobs/queued")
            assert json.loads(body)["status"] == "pending"

            os.kill(process.pid, signal.SIGKILL)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)

        process, banner = self._launch(db, env)
        try:
            port = banner["port"]
            # Both non-terminal jobs were claimed rows without terminal
            # results: the restart re-queues and resumes each once.
            assert banner["resume"]["requeued"] == 2
            assert sorted(banner["resume"]["resumed"]) == ["queued", "stuck"]
            assert banner["resume"]["replayed"] == 0
            assert banner["resume"]["corrupt"] == []

            deadline = time.monotonic() + 120
            status_now = None
            while time.monotonic() < deadline:
                status_now = json.loads(_get(port, "/jobs/queued")[1])[
                    "status"
                ]
                if status_now in ("succeeded", "failed", "cancelled"):
                    break
                time.sleep(0.2)
            assert status_now == "succeeded"

            # Exactly once: every pipeline execution of the queued job
            # happened in the second incarnation, with no duplicates.
            queued_runs = _marker_lines(queued_marker)
            assert queued_runs
            assert len(queued_runs) == len(set(queued_runs))

            # The finished job replays byte-identically with zero
            # re-execution.
            status, fin_after = _get(port, "/jobs/fin")
            assert status == 200
            assert fin_after == fin_before
            assert _marker_lines(fin_marker) == fin_runs_before
        finally:
            process.terminate()
            try:
                process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=30)
