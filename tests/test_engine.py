"""Equivalence tests for the columnar evaluation engine.

The engine's contract (repro.core.engine) is *exact* agreement with the
dict-based reference implementations: same refutes/supports answers,
bit-identical trees, identical suspects, minimized disjunctions, and
DebugReports.  These tests drive random spaces, histories, oracles, and
seeds through both paths and require equality, not similarity.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core import (
    Algorithm,
    BugDoc,
    Comparator,
    Conjunction,
    DDTConfig,
    DebugSession,
    ExecutionHistory,
    Instance,
    Outcome,
    Parameter,
    ParameterKind,
    ParameterSpace,
    Predicate,
    build_tree,
)
from repro.core.engine import ColumnarEngine, SpaceCodec, compile_conjunction
from repro.core.tree import TreeNode


# ---------------------------------------------------------------------------
# Random-model strategies
# ---------------------------------------------------------------------------

def _space_from_blueprint(blueprint: list[tuple[bool, int]]) -> ParameterSpace:
    parameters = []
    for index, (ordinal, n_values) in enumerate(blueprint):
        if ordinal:
            domain = tuple(float(v) for v in range(n_values))
            parameters.append(
                Parameter(f"p{index}", domain, ParameterKind.ORDINAL)
            )
        else:
            domain = tuple(f"v{j}" for j in range(n_values))
            parameters.append(Parameter(f"p{index}", domain))
    return ParameterSpace(parameters)


_spaces = st.lists(
    st.tuples(st.booleans(), st.integers(2, 5)), min_size=2, max_size=4
).map(_space_from_blueprint)


def _random_conjunction(space: ParameterSpace, rng: random.Random) -> Conjunction:
    predicates = []
    for __ in range(rng.randint(1, 3)):
        name = rng.choice(space.names)
        parameter = space[name]
        comparators = (
            list(Comparator)
            if parameter.is_ordinal
            else [Comparator.EQ, Comparator.NEQ]
        )
        predicates.append(
            Predicate(name, rng.choice(comparators), rng.choice(parameter.domain))
        )
    return Conjunction(predicates)


def _random_history(
    space: ParameterSpace, rng: random.Random, size: int
) -> ExecutionHistory:
    history = ExecutionHistory()
    for __ in range(size):
        instance = space.random_instance(rng)
        if instance not in history:
            history.record(
                instance,
                Outcome.FAIL if rng.random() < 0.4 else Outcome.SUCCEED,
            )
    return history


def _trees_equal(a: TreeNode, b: TreeNode) -> bool:
    if (a.predicate, a.leaf_kind, a.n_fail, a.n_succeed, a.depth) != (
        b.predicate,
        b.leaf_kind,
        b.n_fail,
        b.n_succeed,
        b.depth,
    ):
        return False
    if a.is_leaf:
        return b.is_leaf
    return _trees_equal(a.true_branch, b.true_branch) and _trees_equal(
        a.false_branch, b.false_branch
    )


# ---------------------------------------------------------------------------
# History queries
# ---------------------------------------------------------------------------

class TestCompiledQueries:
    @settings(max_examples=60, deadline=None)
    @given(_spaces, st.integers(0, 2**32))
    def test_refutes_supports_match_reference(self, space, seed):
        rng = random.Random(seed)
        history = _random_history(space, rng, size=rng.randint(0, 25))
        engine = ColumnarEngine(space, history)
        for __ in range(15):
            conjunction = _random_conjunction(space, rng)
            assert engine.refutes(conjunction) == history.refutes(conjunction)
            assert engine.supports(conjunction) == history.supports(conjunction)
            assert engine.is_hypothetical_root_cause(
                conjunction
            ) == history.is_hypothetical_root_cause(conjunction)

    @settings(max_examples=40, deadline=None)
    @given(_spaces, st.integers(0, 2**32))
    def test_subsumes_matches_reference(self, space, seed):
        rng = random.Random(seed)
        engine = ColumnarEngine(space, ExecutionHistory())
        for __ in range(15):
            a = _random_conjunction(space, rng)
            b = _random_conjunction(space, rng)
            assert engine.subsumes(a, b) == a.subsumes(b, space)
            assert engine.subsumes(b, a) == b.subsumes(a, space)

    @settings(max_examples=40, deadline=None)
    @given(_spaces, st.integers(0, 2**32))
    def test_compiled_conjunction_matches_satisfied_by(self, space, seed):
        rng = random.Random(seed)
        codec = SpaceCodec(space)
        history = _random_history(space, rng, size=10)
        store = history.columnar_store(space)
        for __ in range(10):
            conjunction = _random_conjunction(space, rng)
            compiled = compile_conjunction(conjunction, codec)
            assert compiled is not None
            rows = store.rows_matching(compiled, store.all_mask)
            for row, instance in enumerate(history.instances):
                expected = conjunction.satisfied_by(instance)
                assert bool(rows & (1 << row)) == expected

    def test_queries_fall_back_on_irregular_history(self):
        space = ParameterSpace([Parameter("a", (0, 1)), Parameter("b", ("x", "y"))])
        history = ExecutionHistory()
        history.record(Instance({"a": 0, "b": "x"}), Outcome.SUCCEED)
        # A row with an out-of-domain value degrades the columnar store.
        history.record(Instance({"a": 99, "b": "y"}), Outcome.SUCCEED)
        history.record(Instance({"a": 1, "b": "y"}), Outcome.FAIL)
        engine = ColumnarEngine(space, history)
        assert history.columnar_store(space).degraded
        for conjunction in (
            Conjunction([Predicate("a", Comparator.EQ, 99)]),
            Conjunction([Predicate("b", Comparator.EQ, "y")]),
        ):
            assert engine.refutes(conjunction) == history.refutes(conjunction)
            assert engine.supports(conjunction) == history.supports(conjunction)
        assert engine.tree() is None  # caller falls back to reference trees

    def test_unknown_parameter_falls_back(self):
        import pytest

        space = ParameterSpace([Parameter("a", (0, 1))])
        history = ExecutionHistory()
        history.record(Instance({"a": 0}), Outcome.SUCCEED)
        engine = ColumnarEngine(space, history)
        stranger = Conjunction([Predicate("zzz", Comparator.EQ, 1)])
        assert compile_conjunction(stranger, SpaceCodec(space)) is None
        # The fallback reproduces the reference behavior exactly --
        # including the KeyError the dict path raises for a predicate
        # on a parameter the instances do not assign.
        with pytest.raises(KeyError):
            history.refutes(stranger)
        with pytest.raises(KeyError):
            engine.refutes(stranger)


# ---------------------------------------------------------------------------
# Incremental tree induction
# ---------------------------------------------------------------------------

class TestIncrementalTrees:
    @settings(max_examples=40, deadline=None)
    @given(_spaces, st.integers(0, 2**32), st.sampled_from([None, 1, 2, 4]))
    def test_incremental_tree_equals_full_rebuild(self, space, seed, max_depth):
        rng = random.Random(seed)
        history = ExecutionHistory()
        engine = ColumnarEngine(space, history)
        seen = set()
        for step in range(rng.randint(5, 30)):
            instance = space.random_instance(rng)
            if instance in seen:
                continue
            seen.add(instance)
            history.record(
                instance,
                Outcome.FAIL if rng.random() < 0.4 else Outcome.SUCCEED,
            )
            # Rebuild the reference tree from scratch; the engine only
            # repairs the paths the new row touches.
            samples = [
                (i, history.outcome_of(i)) for i in history.instances
            ]
            reference = build_tree(space, samples, max_depth=max_depth)
            columnar = engine.tree(max_depth=max_depth)
            assert columnar is not None
            assert _trees_equal(reference, columnar.root), f"diverged at step {step}"
            assert columnar.root.size == reference.size

    def test_fail_paths_identical(self):
        space = ParameterSpace(
            [
                Parameter("a", (0, 1, 2, 3), ParameterKind.ORDINAL),
                Parameter("b", ("x", "y")),
            ]
        )
        rng = random.Random(5)
        history = ExecutionHistory()
        for __ in range(40):
            instance = space.random_instance(rng)
            if instance not in history:
                outcome = (
                    Outcome.FAIL
                    if (instance["a"] >= 2 and instance["b"] == "y")
                    else Outcome.SUCCEED
                )
                history.record(instance, outcome)
        engine = ColumnarEngine(space, history)
        from repro.core import DebuggingTree

        samples = [(i, history.outcome_of(i)) for i in history.instances]
        reference = DebuggingTree(space, samples)
        columnar = engine.tree()
        assert [str(c) for c in columnar.fail_paths()] == [
            str(c) for c in reference.fail_paths()
        ]


# ---------------------------------------------------------------------------
# End-to-end: identical reports from both engines
# ---------------------------------------------------------------------------

def _report_fingerprint(space, oracle, seed, budget, goal):
    results = []
    for engine in ("columnar", "reference"):
        history = ExecutionHistory()
        rng = random.Random(seed)
        for __ in range(6):
            instance = space.random_instance(rng)
            if instance not in history:
                history.record(instance, oracle(instance))
        session = DebugSession(oracle, space, history=history, budget=None)
        if budget is not None:
            from repro.core import InstanceBudget

            session = DebugSession(
                oracle, space, history=history, budget=InstanceBudget(budget)
            )
        bugdoc = BugDoc(session=session, seed=seed, engine=engine)
        if goal == "find_all":
            report = bugdoc.find_all(Algorithm.DECISION_TREES)
        else:
            report = bugdoc.find_one(Algorithm.DECISION_TREES)
        results.append(
            (
                [str(c) for c in report.causes],
                str(report.explanation),
                report.instances_executed,
                report.budget_exhausted,
                report.ddt_result.rounds,
                report.ddt_result.tree_sizes,
                session.budget.spent,
                len(session.history),
            )
        )
    return results


class TestEndToEndEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(
        _spaces,
        st.integers(0, 2**32),
        st.sampled_from([None, 10, 40]),
        st.sampled_from(["find_all", "find_one"]),
    )
    def test_ddt_reports_identical_across_engines(
        self, space, seed, budget, goal
    ):
        rng = random.Random(seed)
        law = {
            instance: rng.random() < 0.3 for instance in space.instances()
        }

        def oracle(instance):
            return Outcome.FAIL if law[instance] else Outcome.SUCCEED

        columnar, reference = _report_fingerprint(
            space, oracle, seed, budget, goal
        )
        assert columnar == reference

    def test_explicit_config_engines_identical(self, mixed_space):
        def oracle(instance):
            bad = instance["a"] >= 3 and instance["b"] != "x"
            return Outcome.FAIL if bad else Outcome.SUCCEED

        fingerprints = []
        for engine in ("columnar", "reference"):
            session = DebugSession(oracle, mixed_space)
            bugdoc = BugDoc(session=session, seed=11)
            report = bugdoc.find_all(
                Algorithm.DECISION_TREES,
                ddt_config=DDTConfig(find_all=True, engine=engine),
            )
            fingerprints.append(
                ([str(c) for c in report.causes], report.instances_executed)
            )
        assert fingerprints[0] == fingerprints[1]

    def test_rejects_unknown_engine(self):
        import pytest

        with pytest.raises(ValueError, match="unknown engine"):
            DDTConfig(engine="warp")
        with pytest.raises(ValueError, match="unknown engine"):
            BugDoc(executor=lambda i: Outcome.SUCCEED,
                   space=ParameterSpace([Parameter("a", (0, 1))]),
                   engine="warp")


# ---------------------------------------------------------------------------
# Satellite invariants: history incrementals and instance keying
# ---------------------------------------------------------------------------

class TestIncrementalHistoryDerivations:
    @settings(max_examples=40, deadline=None)
    @given(_spaces, st.integers(0, 2**32))
    def test_value_universe_matches_recompute(self, space, seed):
        rng = random.Random(seed)
        history = ExecutionHistory()
        for __ in range(rng.randint(1, 20)):
            instance = space.random_instance(rng)
            if instance not in history:
                history.record(
                    instance,
                    Outcome.FAIL if rng.random() < 0.5 else Outcome.SUCCEED,
                )
            expected: dict = {}
            for recorded in history.instances:
                for name, value in recorded.items():
                    expected.setdefault(name, set()).add(value)
            assert history.value_universe() == expected

    def test_universe_copies_are_isolated(self):
        history = ExecutionHistory()
        history.record(Instance({"a": 1}), Outcome.FAIL)
        universe = history.value_universe()
        universe["a"].add(999)
        assert history.value_universe() == {"a": {1}}

    def test_observed_space_cached_until_append(self):
        history = ExecutionHistory()
        history.record(Instance({"a": 1, "b": "x"}), Outcome.FAIL)
        first = history.observed_space()
        assert history.observed_space() is first  # cache hit
        history.record(Instance({"a": 2, "b": "x"}), Outcome.SUCCEED)
        rebuilt = history.observed_space()
        assert rebuilt is not first
        assert set(rebuilt.domain("a")) == {1, 2}
        # Re-recording an already-known instance keeps the cache.
        history.record(Instance({"a": 2, "b": "x"}), Outcome.SUCCEED)
        assert history.observed_space() is rebuilt


class TestInstanceKeying:
    def test_hash_is_order_insensitive_and_cached(self):
        a = Instance({"x": 1, "y": 2})
        b = Instance({"y": 2, "x": 1})
        assert a == b
        assert hash(a) == hash(b)
        assert a.canonical_items == (("x", 1), ("y", 2))
        assert a.canonical_items is a.canonical_items  # computed once

    def test_provenance_key_computed_once_and_stable(self):
        from repro.provenance.store import instance_key

        a = Instance({"b": 2, "a": 1})
        key = instance_key(a)
        assert key == instance_key(Instance({"a": 1, "b": 2}))
        assert instance_key(a) is key  # memoized on the instance
