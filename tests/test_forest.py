"""Tests for the from-scratch random forest (repro.baselines.forest)."""

from __future__ import annotations

import random

import pytest

from repro.baselines import RandomForestRegressor, RegressionTree, featurize
from repro.core import Instance, Parameter, ParameterKind, ParameterSpace


def _space():
    return ParameterSpace(
        [
            Parameter("o", (0, 1, 2, 3, 4, 5, 6, 7), ParameterKind.ORDINAL),
            Parameter("k", ("a", "b", "c")),
        ]
    )


def _dataset(space, target, n=120, seed=0):
    rng = random.Random(seed)
    X, y = [], []
    for __ in range(n):
        instance = space.random_instance(rng)
        X.append(featurize(instance, space))
        y.append(target(instance))
    return X, y


class TestFeaturize:
    def test_uses_domain_indexes(self):
        space = _space()
        assert featurize(Instance({"o": 3, "k": "b"}), space) == (3.0, 1.0)

    def test_out_of_domain_rejected(self):
        with pytest.raises(ValueError):
            featurize(Instance({"o": 99, "k": "a"}), _space())


class TestRegressionTree:
    def test_fits_ordinal_threshold(self):
        space = _space()
        X, y = _dataset(space, lambda i: 1.0 if i["o"] >= 4 else 0.0)
        tree = RegressionTree(space, rng=random.Random(0), feature_fraction=1.0)
        tree.fit(X, y)
        high = tree.predict_one(featurize(Instance({"o": 6, "k": "a"}), space))
        low = tree.predict_one(featurize(Instance({"o": 1, "k": "a"}), space))
        assert high > 0.8 and low < 0.2

    def test_fits_categorical_equality(self):
        space = _space()
        X, y = _dataset(space, lambda i: 1.0 if i["k"] == "b" else 0.0)
        tree = RegressionTree(space, rng=random.Random(0), feature_fraction=1.0)
        tree.fit(X, y)
        hit = tree.predict_one(featurize(Instance({"o": 0, "k": "b"}), space))
        miss = tree.predict_one(featurize(Instance({"o": 0, "k": "a"}), space))
        assert hit > 0.8 and miss < 0.2

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            RegressionTree(_space()).predict_one((0.0, 0.0))

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            RegressionTree(_space()).fit([], [])


class TestRandomForest:
    def test_predict_mean_and_std(self):
        space = _space()
        X, y = _dataset(space, lambda i: 1.0 if i["o"] >= 4 else 0.0)
        forest = RandomForestRegressor(space, n_trees=8, seed=1).fit(X, y)
        mean, std = forest.predict(featurize(Instance({"o": 7, "k": "a"}), space))
        assert mean > 0.6
        assert std >= 0.0

    def test_variance_higher_off_distribution(self):
        """Cross-tree disagreement is the SMAC uncertainty signal."""
        space = _space()
        rng = random.Random(2)
        # Train only on o in {0, 7}: the middle is unseen.
        X, y = [], []
        for __ in range(80):
            o = rng.choice((0, 7))
            instance = Instance({"o": o, "k": rng.choice(("a", "b", "c"))})
            X.append(featurize(instance, space))
            y.append(1.0 if o == 7 else 0.0)
        forest = RandomForestRegressor(space, n_trees=12, seed=3).fit(X, y)
        __, std_seen = forest.predict(featurize(Instance({"o": 0, "k": "a"}), space))
        __, std_unseen = forest.predict(
            featurize(Instance({"o": 4, "k": "a"}), space)
        )
        assert std_unseen >= std_seen

    def test_predict_instance_convenience(self):
        space = _space()
        X, y = _dataset(space, lambda i: float(i["o"]))
        forest = RandomForestRegressor(space, n_trees=5, seed=0).fit(X, y)
        mean, __ = forest.predict_instance(Instance({"o": 7, "k": "a"}))
        assert mean > forest.predict_instance(Instance({"o": 0, "k": "a"}))[0]

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            RandomForestRegressor(_space()).predict((0.0, 0.0))

    def test_deterministic_given_seed(self):
        space = _space()
        X, y = _dataset(space, lambda i: float(i["o"] % 3))
        point = featurize(Instance({"o": 5, "k": "c"}), space)
        first = RandomForestRegressor(space, n_trees=6, seed=9).fit(X, y).predict(point)
        second = RandomForestRegressor(space, n_trees=6, seed=9).fit(X, y).predict(point)
        assert first == second
