"""Tests for the process-query engine (repro.obs.query) and the
``repro query`` CLI, over a fixture with known ground truth.

The fixture persists five jobs across two workflows with hand-written
event logs, so every query answer is exactly computable by inspection:

========  ========  ================  ======================  ===========
job       workflow  spec fingerprint  suspect events (order)  solver secs
========  ========  ================  ======================  ===========
a1        alpha     fpA               confirmed, refuted      1.0 + 1.0
a2        alpha     fpA               refuted, confirmed      4.0
a3        alpha     fpB               confirmed               6.0
b1        beta      fpC               confirmed x2, refuted   10.0
b2        beta      fpC               (none)                  20.0
========  ========  ================  ======================  ===========

Ground truth: the SIGNAL-style ``confirmed ~> refuted`` pattern matches
exactly {a1, b1} (a2 has both kinds but in the wrong order); the p95 of
per-job summed solver spans grouped by workflow is alpha=5.8 (linear
interpolation over [2, 4, 6]) and beta=19.5.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.query import Predicate, QueryEngine, sequence_matches
from repro.provenance import SQLiteProvenanceStore

#: job -> (workflow, spec_fingerprint, status, budget, suspect-kind
#: sequence, per-solver-span seconds)
_JOBS = {
    "a1": ("alpha", "fpA", "succeeded", 3,
           ["suspect_confirmed", "suspect_refuted"], [1.0, 1.0]),
    "a2": ("alpha", "fpA", "succeeded", 5,
           ["suspect_refuted", "suspect_confirmed"], [4.0]),
    "a3": ("alpha", "fpB", "succeeded", 7,
           ["suspect_confirmed"], [6.0]),
    "b1": ("beta", "fpC", "succeeded", 9,
           ["suspect_confirmed", "suspect_confirmed", "suspect_refuted"],
           [10.0]),
    "b2": ("beta", "fpC", "failed", 11, [], [20.0]),
}


def _populate(store: SQLiteProvenanceStore) -> None:
    created = 100.0
    for job_id, (wf, fp, status, budget, suspects, spans) in _JOBS.items():
        created += 1.0
        store.begin_job(
            job_id, workflow=wf, algorithm="combined",
            spec_fingerprint=fp, created_at=created,
        )
        rows = []
        seq = 0
        for kind in ["submitted", "started"] + suspects:
            rows.append({
                "job_id": job_id, "seq": seq, "kind": kind,
                "ts_wall": created + seq, "ts_monotonic": seq,
                "terminal": False,
                "payload": {"spent": seq} if kind == "started" else {},
            })
            seq += 1
        for seconds in spans:
            rows.append({
                "job_id": job_id, "seq": seq, "kind": "span",
                "ts_wall": created + seq, "ts_monotonic": seq,
                "terminal": False,
                "payload": {"name": "solver", "seconds": seconds},
            })
            seq += 1
        rows.append({
            "job_id": job_id, "seq": seq, "kind": "finished",
            "ts_wall": created + seq, "ts_monotonic": seq,
            "terminal": True, "payload": {"status": status},
        })
        store.append_job_events(rows)
        store.finish_job(
            job_id, status=status, report_fingerprint="r-" + job_id,
            budget_spent=budget, wall_seconds=float(budget),
            finished_at=created + seq,
        )


@pytest.fixture()
def db_path(tmp_path):
    return tmp_path / "query.db"


@pytest.fixture()
def store(db_path):
    store = SQLiteProvenanceStore(db_path)
    _populate(store)
    yield store
    store.close()


@pytest.fixture()
def engine(store):
    return QueryEngine(store)


class TestPredicate:
    def test_parse_forms(self):
        p = Predicate.parse("kind=suspect_confirmed")
        assert (p.field, p.op, p.value) == ("kind", "=", "suspect_confirmed")
        assert Predicate.parse("seq>=10").value == 10
        assert Predicate.parse("seconds>0.5").value == 0.5
        assert Predicate.parse('name="solver"').value == "solver"
        # Longest-operator-first: `<=` is not parsed as `<` then `=3`.
        assert Predicate.parse("seq<=3").op == "<="

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            Predicate.parse("no-operator-here")
        with pytest.raises(ValueError):
            Predicate.parse("=5")

    def test_envelope_vs_payload_fields(self):
        row = {
            "job_id": "j", "seq": 4, "kind": "span", "terminal": False,
            "payload": {"name": "solver", "nested": {"depth": 2}},
        }
        assert Predicate.parse("kind=span").matches(row)
        assert Predicate.parse("seq<5").matches(row)
        assert Predicate.parse("name=solver").matches(row)
        assert Predicate.parse("nested.depth=2").matches(row)
        assert not Predicate.parse("nested.missing=2").matches(row)
        # Missing fields never satisfy an ordering; != treats missing
        # as "not equal".
        assert not Predicate.parse("absent>1").matches(row)
        assert Predicate.parse("absent!=1").matches(row)
        # Incomparable types never match an ordering.
        assert not Predicate.parse("name>3").matches(row)


class TestSequence:
    def test_eventually_follows_ground_truth(self, engine):
        matches = engine.sequence(["suspect_confirmed", "suspect_refuted"])
        assert {m["job_id"] for m in matches} == {"a1", "b1"}

    def test_order_matters(self, engine):
        # a2 has both kinds but refuted-first: only a2 matches the
        # reversed pattern among alpha jobs... along with b1, whose
        # stream has no refuted-then-confirmed pair.
        matches = engine.sequence(["suspect_refuted", "suspect_confirmed"])
        assert {m["job_id"] for m in matches} == {"a2"}

    def test_first_witness_seqs(self, engine):
        (match,) = [
            m
            for m in engine.sequence(
                ["suspect_confirmed", "suspect_refuted"]
            )
            if m["job_id"] == "b1"
        ]
        # b1: confirmed at seq 2 (first witness, not the seq-3 repeat),
        # refuted at seq 4.
        assert match["seqs"] == [2, 4]

    def test_steps_with_predicates(self, engine):
        matches = engine.sequence(["span[name=solver,seconds>5]", "finished"])
        assert {m["job_id"] for m in matches} == {"a3", "b1", "b2"}

    def test_workflow_restriction(self, engine):
        matches = engine.sequence(
            ["suspect_confirmed", "suspect_refuted"], workflow="beta"
        )
        assert {m["job_id"] for m in matches} == {"b1"}

    def test_empty_pattern_matches_nothing(self):
        assert list(sequence_matches([{"job_id": "x", "seq": 0}], [])) == []


class TestEvents:
    def test_kind_filter_and_limit(self, engine):
        rows = list(engine.events(kinds=["span"]))
        assert len(rows) == 6  # 2+1+1+1+1 solver spans
        assert all(r["kind"] == "span" for r in rows)
        assert len(list(engine.events(kinds=["span"], limit=3))) == 3

    def test_predicates_filter(self, engine):
        rows = list(
            engine.events(
                kinds=["span"],
                predicates=[Predicate.parse("seconds>=6")],
            )
        )
        assert {r["job_id"] for r in rows} == {"a3", "b1", "b2"}

    def test_jobs_listing(self, engine):
        rows = engine.jobs()
        assert [r["job_id"] for r in rows] == ["a1", "a2", "a3", "b1", "b2"]
        assert [r["job_id"] for r in engine.jobs(workflow="beta")] == [
            "b1", "b2",
        ]


class TestAggregate:
    def test_span_p95_grouped_by_workflow(self, engine):
        groups = engine.aggregate(
            "span:solver", stat="p95", group_by="workflow"
        )
        # alpha per-job sums [2, 4, 6] -> p95 = 4 + 0.9 * 2 = 5.8;
        # beta [10, 20] -> 19.5.
        assert groups["alpha"]["jobs"] == 3
        assert groups["alpha"]["value"] == pytest.approx(5.8)
        assert groups["beta"]["value"] == pytest.approx(19.5)

    def test_span_sum_ungrouped(self, engine):
        groups = engine.aggregate("span:solver", stat="sum")
        assert groups == {"*": {"jobs": 5, "value": pytest.approx(42.0)}}

    def test_count_metric(self, engine):
        groups = engine.aggregate(
            "count:suspect_confirmed", stat="sum", group_by="workflow"
        )
        assert groups["alpha"] == {"jobs": 3, "value": 3.0}
        # b2 emitted none, so only b1 contributes a value.
        assert groups["beta"] == {"jobs": 1, "value": 2.0}

    def test_jobs_column_metric_grouped_by_fingerprint(self, engine):
        groups = engine.aggregate(
            "budget_spent", stat="mean", group_by="spec_fingerprint"
        )
        assert groups["fpA"]["value"] == pytest.approx(4.0)  # (3 + 5) / 2
        assert groups["fpB"]["value"] == pytest.approx(7.0)
        assert groups["fpC"]["value"] == pytest.approx(10.0)  # (9 + 11) / 2

    def test_group_by_status(self, engine):
        groups = engine.aggregate(
            "wall_seconds", stat="count", group_by="status"
        )
        assert groups["succeeded"]["jobs"] == 4
        assert groups["failed"]["jobs"] == 1

    def test_bad_stat_and_group_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.aggregate("span:solver", stat="p99")
        with pytest.raises(ValueError):
            engine.aggregate("span:solver", group_by="job_id")


class TestQueryCli:
    def test_jobs(self, store, db_path, capsys):
        assert main(["query", "jobs", "--store", str(db_path)]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [r["job_id"] for r in rows] == ["a1", "a2", "a3", "b1", "b2"]

    def test_seq(self, store, db_path, capsys):
        code = main([
            "query", "seq", "suspect_confirmed", "suspect_refuted",
            "--store", str(db_path),
        ])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["count"] == 2
        assert {m["job_id"] for m in document["matches"]} == {"a1", "b1"}

    def test_events_jsonl(self, store, db_path, capsys):
        code = main([
            "query", "events", "--kind", "span", "--where", "seconds>=10",
            "--store", str(db_path),
        ])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        rows = [json.loads(line) for line in lines]
        assert {r["job_id"] for r in rows} == {"b1", "b2"}

    def test_agg(self, store, db_path, capsys):
        code = main([
            "query", "agg", "--metric", "span:solver", "--stat", "p95",
            "--group-by", "workflow", "--store", str(db_path),
        ])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["groups"]["alpha"]["value"] == pytest.approx(5.8)

    def test_bad_predicate_exits(self, store, db_path):
        with pytest.raises(SystemExit):
            main([
                "query", "events", "--where", "garbage",
                "--store", str(db_path),
            ])
