"""Differential tests for the sharded columnar store.

The sharding refactor's contract is three-way equality: for every
engine entry point, a multi-shard store (tiny ``shard_rows`` forcing
many boundary crossings) must answer exactly like a single-shard store
over the same rows, which in turn must answer exactly like the
dict-based reference implementations.  These tests drive random
spaces/histories through all three paths -- including appends that
straddle shard boundaries mid-query and degraded histories -- and
require equality, not similarity.  The bit kernels are property-tested
against each other, and the LRU match-table cap is checked to evict
without ever changing an answer.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Comparator,
    Conjunction,
    ExecutionHistory,
    Outcome,
    Parameter,
    ParameterKind,
    ParameterSpace,
    Predicate,
)
from repro.core.bitkernel import (
    _popcount_bytes,
    _popcount_int,
    accumulate_codes,
    iter_bits,
    lowest_bit,
    rank,
)
from repro.core.engine import ColumnarEngine, ColumnarStore, ShardPlan
from repro.core.shards import MIN_AUTO_SHARD_ROWS, Shard


# ---------------------------------------------------------------------------
# Random-model strategies (the engine suite's, kept local on purpose so
# this file documents the sharded contract on its own)
# ---------------------------------------------------------------------------

def _space_from_blueprint(blueprint: list[tuple[bool, int]]) -> ParameterSpace:
    parameters = []
    for index, (ordinal, n_values) in enumerate(blueprint):
        if ordinal:
            domain = tuple(float(v) for v in range(n_values))
            parameters.append(
                Parameter(f"p{index}", domain, ParameterKind.ORDINAL)
            )
        else:
            domain = tuple(f"v{j}" for j in range(n_values))
            parameters.append(Parameter(f"p{index}", domain))
    return ParameterSpace(parameters)


_spaces = st.lists(
    st.tuples(st.booleans(), st.integers(2, 5)), min_size=2, max_size=4
).map(_space_from_blueprint)

# Tiny shards + a multi-worker plan: every history beyond a few rows
# crosses shard boundaries, and batch queries exercise the fan-out.
_SHARDED = ShardPlan(shard_rows=4, max_workers=2, fan_min_batch=2)
_UNSHARDED = ShardPlan(shard_rows=1 << 62, max_workers=1)


def _random_conjunction(space: ParameterSpace, rng: random.Random) -> Conjunction:
    predicates = []
    for __ in range(rng.randint(1, 3)):
        name = rng.choice(space.names)
        parameter = space[name]
        comparators = (
            list(Comparator)
            if parameter.is_ordinal
            else [Comparator.EQ, Comparator.NEQ]
        )
        predicates.append(
            Predicate(name, rng.choice(comparators), rng.choice(parameter.domain))
        )
    return Conjunction(predicates)


def _record(histories, space, rng, outcomes):
    """Record one random instance into every history, deterministically.

    ``outcomes`` keeps a repeated instance on its first outcome (the
    deterministic-evaluation assumption histories enforce)."""
    instance = space.random_instance(rng)
    key = tuple(sorted(instance.items()))
    outcome = outcomes.setdefault(
        key, Outcome.FAIL if rng.random() < 0.4 else Outcome.SUCCEED
    )
    for history in histories:
        history.record(instance, outcome)
    return instance


def _twin_histories(space, rng, size):
    """Identical evaluation streams recorded into two histories.

    Separate history objects let the sharded and unsharded engines each
    keep their own incremental store (a history interns one store)."""
    sharded_history = ExecutionHistory()
    unsharded_history = ExecutionHistory()
    outcomes: dict = {}
    for __ in range(size):
        _record((sharded_history, unsharded_history), space, rng, outcomes)
    return sharded_history, unsharded_history


def _trees_equal(a, b) -> bool:
    if (a.predicate, a.leaf_kind, a.n_fail, a.n_succeed, a.depth) != (
        b.predicate,
        b.leaf_kind,
        b.n_fail,
        b.n_succeed,
        b.depth,
    ):
        return False
    if a.is_leaf:
        return b.is_leaf
    return _trees_equal(a.true_branch, b.true_branch) and _trees_equal(
        a.false_branch, b.false_branch
    )


# ---------------------------------------------------------------------------
# Bit kernels
# ---------------------------------------------------------------------------

class TestBitKernel:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 700) - 1))
    def test_popcount_kernels_agree(self, mask):
        assert _popcount_int(mask) == mask.bit_count()
        assert _popcount_bytes(mask) == mask.bit_count()

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=0, max_value=(1 << 200) - 1),
        st.integers(min_value=0, max_value=220),
    )
    def test_rank_counts_bits_below_position(self, mask, position):
        assert rank(mask, position) == sum(
            1 for bit in iter_bits(mask) if bit < position
        )

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=(1 << 200) - 1))
    def test_lowest_bit_and_iter_bits(self, mask):
        bits = list(iter_bits(mask))
        assert bits == sorted(bits)
        assert bits[0] == lowest_bit(mask)
        assert sum(1 << bit for bit in bits) == mask

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(0, (1 << 64) - 1), min_size=1, max_size=8),
        st.integers(min_value=0),
    )
    def test_accumulate_codes_matches_naive_or(self, column, allowed_seed):
        allowed = allowed_seed % (1 << len(column))
        expected = 0
        for code in range(len(column)):
            if (allowed >> code) & 1:
                expected |= column[code]
        assert accumulate_codes(column, allowed) == expected


# ---------------------------------------------------------------------------
# Shard plan
# ---------------------------------------------------------------------------

class TestShardPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShardPlan(shard_rows=0)
        with pytest.raises(ValueError):
            ShardPlan(shard_rows=8, max_workers=0)

    def test_auto_keeps_small_histories_single_shard(self):
        plan = ShardPlan.auto(row_hint=500, cpu_count=4)
        assert plan.shard_rows >= MIN_AUTO_SHARD_ROWS

    def test_auto_scales_shard_rows_with_history(self):
        plan = ShardPlan.auto(row_hint=1 << 21, cpu_count=4)
        # ~2 shards per worker: shard_rows lands near rows / 8.
        assert MIN_AUTO_SHARD_ROWS <= plan.shard_rows < (1 << 21)
        assert plan.max_workers == 4

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_ROWS", "64")
        monkeypatch.setenv("REPRO_SHARD_WORKERS", "3")
        plan = ShardPlan.auto(row_hint=10**6, cpu_count=16)
        assert plan.shard_rows == 64
        assert plan.max_workers == 3


# ---------------------------------------------------------------------------
# Store-level equivalence
# ---------------------------------------------------------------------------

class TestShardedStore:
    @settings(max_examples=40, deadline=None)
    @given(_spaces, st.integers(0, 2**32))
    def test_composed_views_match_unsharded(self, space, seed):
        rng = random.Random(seed)
        sharded_history, unsharded_history = _twin_histories(
            space, rng, size=rng.randint(0, 30)
        )
        sharded = sharded_history.columnar_store(space, plan=_SHARDED)
        unsharded = unsharded_history.columnar_store(space, plan=_UNSHARDED)
        assert len(unsharded.shards) == 1
        assert sharded.n_rows == unsharded.n_rows
        assert sharded.fail_mask == unsharded.fail_mask
        assert sharded.all_mask == unsharded.all_mask
        assert sharded.succeed_mask == unsharded.succeed_mask
        assert sharded.value_rows == unsharded.value_rows
        assert sharded.row_codes == unsharded.row_codes
        # Shard row ranges tile [0, n_rows) exactly.
        position = 0
        for shard in sharded.shards:
            assert shard.start == position
            position += shard.n_rows
        assert position == sharded.n_rows

    @settings(max_examples=40, deadline=None)
    @given(_spaces, st.integers(0, 2**32))
    def test_match_and_row_queries_match_unsharded(self, space, seed):
        rng = random.Random(seed)
        sharded_history, unsharded_history = _twin_histories(
            space, rng, size=rng.randint(1, 30)
        )
        sharded = sharded_history.columnar_store(space, plan=_SHARDED)
        unsharded = unsharded_history.columnar_store(space, plan=_UNSHARDED)
        codec = sharded.codec
        for __ in range(10):
            index = rng.randrange(codec.n_params)
            allowed = rng.randrange(1 << codec.domain_sizes[index])
            assert sharded.match_rows(index, allowed) == unsharded.match_rows(
                index, allowed
            )
        from repro.core.engine import compile_many

        conjunctions = [_random_conjunction(space, rng) for __ in range(8)]
        compiled = compile_many(conjunctions, codec)
        within = sharded.all_mask
        assert sharded.rows_matching_many(
            compiled, within
        ) == unsharded.rows_matching_many(compiled, within)
        for entry in compiled:
            if entry is None:
                continue
            assert sharded.rows_matching(entry, within) == unsharded.rows_matching(
                entry, within
            )
            assert sharded.any_match(entry, within_fail=False) == bool(
                unsharded.rows_matching(entry, unsharded.succeed_mask)
            )
            assert sharded.any_match(entry, within_fail=True) == bool(
                unsharded.rows_matching(entry, unsharded.fail_mask)
            )

    def test_boundary_straddling_appends_extend_tail_only(self):
        space = _space_from_blueprint([(True, 4), (False, 3)])
        rng = random.Random(7)
        history = ExecutionHistory()
        store = history.columnar_store(space, plan=ShardPlan(shard_rows=4))
        index, allowed = 0, 0b0101
        seen: set[tuple] = set()
        while store.n_rows < 11:  # crosses two shard boundaries
            instance = space.random_instance(rng)
            key = tuple(sorted(instance.items()))
            if key in seen:
                continue
            seen.add(key)
            history.record(
                instance, Outcome.FAIL if rng.random() < 0.5 else Outcome.SUCCEED
            )
            store = history.columnar_store(space, plan=ShardPlan(shard_rows=4))
            expected = 0
            for row, codes in enumerate(store.row_codes):
                if (allowed >> codes[index]) & 1:
                    expected |= 1 << row
            assert store.match_rows(index, allowed) == expected
        assert len(store.shards) == 3
        assert all(shard.sealed for shard in store.shards[:-1])
        assert not store.shards[-1].sealed
        # Sealed shards' match tables were extended only while they were
        # the tail; their entries stay at their final row counts.
        for shard in store.shards[:-1]:
            for __, built in shard._match.values():
                assert built <= shard.n_rows

    def test_lru_cap_evicts_without_changing_answers(self):
        space = _space_from_blueprint([(True, 5), (False, 4)])
        rng = random.Random(11)
        history = ExecutionHistory()
        outcomes: dict = {}
        for __ in range(20):
            _record((history,), space, rng, outcomes)
        store = ColumnarStore(
            history, space, plan=ShardPlan(shard_rows=6), match_table_limit=2
        )
        store.sync()
        reference = ColumnarStore(history, space, plan=_UNSHARDED)
        reference.sync()
        queries = [(i, a) for i in range(2) for a in range(1, 1 << 4)]
        rng.shuffle(queries)
        for index, allowed in queries * 2:
            allowed %= 1 << store.codec.domain_sizes[index]
            if not allowed:
                continue
            assert store.match_rows(index, allowed) == reference.match_rows(
                index, allowed
            )
        assert store.match_evictions > 0
        stats = store.stats()
        assert stats["match_evictions"] == store.match_evictions
        assert stats["match_entries"] > 0
        assert stats["match_bytes"] > 0

    def test_stats_shape(self):
        space = _space_from_blueprint([(True, 3), (False, 3)])
        history = ExecutionHistory()
        store = history.columnar_store(space, plan=_SHARDED)
        stats = store.stats()
        for key in (
            "n_rows",
            "shards",
            "shard_rows",
            "match_hits",
            "match_misses",
            "match_extensions",
            "match_evictions",
            "match_entries",
            "match_bytes",
            "parallel_queries",
        ):
            assert key in stats


# ---------------------------------------------------------------------------
# Engine-level three-way equivalence
# ---------------------------------------------------------------------------

class TestShardedEngine:
    def _engines(self, space, rng, size):
        sharded_history, unsharded_history = _twin_histories(space, rng, size)
        sharded = ColumnarEngine(space, sharded_history, plan=_SHARDED)
        unsharded = ColumnarEngine(space, unsharded_history, plan=_UNSHARDED)
        return sharded, unsharded, sharded_history

    @settings(max_examples=40, deadline=None)
    @given(_spaces, st.integers(0, 2**32))
    def test_screening_matches_unsharded_and_reference(self, space, seed):
        rng = random.Random(seed)
        sharded, unsharded, history = self._engines(
            space, rng, size=rng.randint(0, 30)
        )
        conjunctions = [_random_conjunction(space, rng) for __ in range(10)]
        assert (
            sharded.refutes_many(conjunctions)
            == unsharded.refutes_many(conjunctions)
            == [history.refutes(c) for c in conjunctions]
        )
        assert (
            sharded.supports_many(conjunctions)
            == unsharded.supports_many(conjunctions)
            == [history.supports(c) for c in conjunctions]
        )
        for conjunction in conjunctions:
            assert sharded.refutes(conjunction) == history.refutes(conjunction)
            assert sharded.supports(conjunction) == history.supports(conjunction)
        assert sharded.fallbacks == 0
        assert unsharded.fallbacks == 0

    @settings(max_examples=30, deadline=None)
    @given(_spaces, st.integers(0, 2**32))
    def test_screening_with_interleaved_appends(self, space, seed):
        """Appends that straddle shard boundaries mid-query stream."""
        rng = random.Random(seed)
        sharded_history = ExecutionHistory()
        unsharded_history = ExecutionHistory()
        sharded = ColumnarEngine(space, sharded_history, plan=_SHARDED)
        unsharded = ColumnarEngine(space, unsharded_history, plan=_UNSHARDED)
        outcomes: dict = {}
        for __ in range(6):
            for ___ in range(rng.randint(1, 6)):  # often crosses a boundary
                _record(
                    (sharded_history, unsharded_history), space, rng, outcomes
                )
            conjunctions = [_random_conjunction(space, rng) for ____ in range(5)]
            assert (
                sharded.refutes_many(conjunctions)
                == unsharded.refutes_many(conjunctions)
                == [sharded_history.refutes(c) for c in conjunctions]
            )
            assert (
                sharded.supports_many(conjunctions)
                == unsharded.supports_many(conjunctions)
                == [sharded_history.supports(c) for c in conjunctions]
            )
        assert sharded.fallbacks == 0

    @settings(max_examples=30, deadline=None)
    @given(_spaces, st.integers(0, 2**32))
    def test_scans_and_supersets_match_reference(self, space, seed):
        rng = random.Random(seed)
        sharded, unsharded, history = self._engines(
            space, rng, size=rng.randint(1, 30)
        )
        for __ in range(8):
            failing = space.random_instance(rng)
            assert (
                sharded.disjoint_successes(failing)
                == unsharded.disjoint_successes(failing)
                == history.disjoint_successes(failing)
            )
            assert (
                sharded.most_different_success(failing)
                == unsharded.most_different_success(failing)
                == history.most_different_success(failing)
            )
            limit = rng.choice([None, 1, 2])
            assert (
                sharded.mutually_disjoint_successes(failing, limit)
                == unsharded.mutually_disjoint_successes(failing, limit)
                == history.mutually_disjoint_successes(failing, limit)
            )
            names = rng.sample(space.names, rng.randint(1, len(space.names)))
            assignment = {name: rng.choice(space[name].domain) for name in names}
            assert (
                sharded.success_superset_of(assignment)
                == unsharded.success_superset_of(assignment)
                == history.success_superset_of(assignment)
            )

    @settings(max_examples=25, deadline=None)
    @given(_spaces, st.integers(0, 2**32))
    def test_subsumption_and_value_lists_match(self, space, seed):
        rng = random.Random(seed)
        sharded, unsharded, __ = self._engines(space, rng, size=rng.randint(0, 20))
        generals = [_random_conjunction(space, rng) for ___ in range(5)]
        specifics = [_random_conjunction(space, rng) for ___ in range(5)]
        expected = [
            [g.subsumes(s, space) for s in specifics] for g in generals
        ]
        assert sharded.subsumes_matrix(generals, specifics) == expected
        assert unsharded.subsumes_matrix(generals, specifics) == expected
        assert sharded.subsumed_by_any(generals, specifics) == [
            any(row[j] for row in expected) for j in range(len(specifics))
        ]
        for conjunction in generals:
            assert sharded.satisfying_value_lists(
                conjunction
            ) == unsharded.satisfying_value_lists(conjunction)

    @settings(max_examples=25, deadline=None)
    @given(_spaces, st.integers(0, 2**32))
    def test_trees_match_unsharded(self, space, seed):
        rng = random.Random(seed)
        sharded, unsharded, __ = self._engines(space, rng, size=rng.randint(0, 30))
        for max_depth in (None, 2):
            a = sharded.tree(max_depth)
            b = unsharded.tree(max_depth)
            assert (a is None) == (b is None)
            if a is not None:
                assert _trees_equal(a.root, b.root)

    def test_degraded_history_falls_back_identically(self):
        space = _space_from_blueprint([(True, 3), (False, 3)])
        rng = random.Random(3)
        history = ExecutionHistory()
        outcomes: dict = {}
        for __ in range(6):
            _record((history,), space, rng, outcomes)
        # A row the codec cannot encode (extra parameter) degrades the
        # store; every query must still answer via the reference path.
        from repro.core import Instance

        history.record(
            Instance({**space.random_instance(rng), "rogue": 1}), Outcome.FAIL
        )
        engine = ColumnarEngine(space, history, plan=_SHARDED)
        conjunctions = [_random_conjunction(space, rng) for __ in range(6)]
        assert engine.refutes_many(conjunctions) == [
            history.refutes(c) for c in conjunctions
        ]
        assert engine.supports_many(conjunctions) == [
            history.supports(c) for c in conjunctions
        ]
        assert engine.fallbacks >= len(conjunctions)
        assert engine.tree() is None

    def test_stats_expose_shard_and_kernel_counters(self):
        space = _space_from_blueprint([(True, 4), (False, 3)])
        rng = random.Random(5)
        history = ExecutionHistory()
        outcomes: dict = {}
        for __ in range(20):
            _record((history,), space, rng, outcomes)
        engine = ColumnarEngine(space, history, plan=_SHARDED)
        conjunctions = [_random_conjunction(space, rng) for __ in range(8)]
        engine.refutes_many(conjunctions)
        stats = engine.stats()
        assert stats["shards"] >= 2
        assert stats["kernel_path"] in ("int", "bytes")
        assert stats["parallel_queries"] >= 1  # the batch fanned
        for key in ("match_evictions", "match_entries", "match_bytes"):
            assert key in stats
        assert stats["fallbacks"] == 0

    def test_parallel_matrix_populates_serial_cache(self):
        space = _space_from_blueprint([(True, 4), (False, 4)])
        rng = random.Random(9)
        history = ExecutionHistory()
        engine = ColumnarEngine(space, history, plan=_SHARDED)
        generals = [_random_conjunction(space, rng) for __ in range(6)]
        specifics = [_random_conjunction(space, rng) for __ in range(6)]
        first = engine.subsumes_matrix(generals, specifics)
        # Second call is served from the verdict memo; answers identical.
        assert engine.subsumes_matrix(generals, specifics) == first
        expected = [
            [g.subsumes(s, space) for s in specifics] for g in generals
        ]
        assert first == expected


class TestShardedEndToEnd:
    def test_bugdoc_reports_identical_across_plans(self):
        """Full-pipeline differential: sharded vs default-plan reports."""
        from repro.core import Algorithm, BugDoc

        space = _space_from_blueprint([(True, 4), (True, 3), (False, 3)])

        def oracle(instance):
            return (
                Outcome.FAIL
                if instance["p0"] >= 2.0 and instance["p2"] == "v1"
                else Outcome.SUCCEED
            )

        reports = []
        for plan in (None, ShardPlan(shard_rows=4, max_workers=2)):
            bugdoc = BugDoc(oracle, space, budget=120, seed=13, shard_plan=plan)
            reports.append(bugdoc.find_all(Algorithm.DECISION_TREES))
        assert reports[0].causes == reports[1].causes
        assert reports[0].explanation == reports[1].explanation
        assert reports[0].instances_executed == reports[1].instances_executed
        assert reports[0].asserted
