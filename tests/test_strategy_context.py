"""Engine equivalence for Shortcut / Stacked Shortcut via StrategyContext.

The tentpole contract of the strategy layer port: every history scan the
shortcut strategies perform (disjoint successes, Hamming-distance
ranking, mutual disjointness, the success-superset sanity check) returns
**exactly** what the dict-based reference returns, and whole strategy
runs produce byte-identical results and budgets on
``engine="columnar"`` and ``engine="reference"`` -- including histories
that force the columnar store to degrade and fall back.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core import (
    Algorithm,
    BugDoc,
    DebugSession,
    ExecutionHistory,
    Instance,
    InstanceBudget,
    Outcome,
    Parameter,
    ParameterKind,
    ParameterSpace,
    StrategyContext,
)
from repro.core.engine import ColumnarEngine
from repro.core.shortcut import select_good_instance, shortcut
from repro.core.stacked import stacked_shortcut


# ---------------------------------------------------------------------------
# Random-model strategies
# ---------------------------------------------------------------------------

def _space_from_blueprint(blueprint: list[tuple[bool, int]]) -> ParameterSpace:
    parameters = []
    for index, (ordinal, n_values) in enumerate(blueprint):
        if ordinal:
            domain = tuple(float(v) for v in range(n_values))
            parameters.append(
                Parameter(f"p{index}", domain, ParameterKind.ORDINAL)
            )
        else:
            domain = tuple(f"v{j}" for j in range(n_values))
            parameters.append(Parameter(f"p{index}", domain))
    return ParameterSpace(parameters)


_spaces = st.lists(
    st.tuples(st.booleans(), st.integers(2, 5)), min_size=2, max_size=4
).map(_space_from_blueprint)


def _seeded_history(
    space: ParameterSpace, oracle, seed: int, size: int
) -> ExecutionHistory:
    rng = random.Random(seed)
    history = ExecutionHistory()
    for __ in range(size):
        instance = space.random_instance(rng)
        if instance not in history:
            history.record(instance, oracle(instance))
    return history


def _random_oracle(space: ParameterSpace, seed: int):
    rng = random.Random(seed)
    law = {instance: rng.random() < 0.35 for instance in space.instances()}

    def oracle(instance: Instance) -> Outcome:
        return Outcome.FAIL if law[instance] else Outcome.SUCCEED

    return oracle


# ---------------------------------------------------------------------------
# Scan-level equivalence (engine vs reference history)
# ---------------------------------------------------------------------------

class TestScanEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(_spaces, st.integers(0, 2**32))
    def test_disjointness_and_hamming_scans_match_reference(self, space, seed):
        rng = random.Random(seed)
        oracle = _random_oracle(space, seed)
        history = _seeded_history(space, oracle, seed, size=rng.randint(0, 30))
        engine = ColumnarEngine(space, history)
        for __ in range(8):
            anchor = space.random_instance(rng)
            assert engine.disjoint_successes(
                anchor
            ) == history.disjoint_successes(anchor)
            assert engine.most_different_success(
                anchor
            ) == history.most_different_success(anchor)
            for limit in (None, 1, 2, 5):
                assert engine.mutually_disjoint_successes(
                    anchor, limit
                ) == history.mutually_disjoint_successes(anchor, limit)
            partial = {
                name: value
                for name, value in anchor.items()
                if rng.random() < 0.6
            }
            assert engine.success_superset_of(
                partial
            ) == history.success_superset_of(partial)

    def test_out_of_domain_anchor_stays_exact(self):
        space = ParameterSpace(
            [Parameter("a", (0, 1, 2)), Parameter("b", ("x", "y"))]
        )
        history = ExecutionHistory()
        history.record(Instance({"a": 0, "b": "x"}), Outcome.SUCCEED)
        history.record(Instance({"a": 1, "b": "y"}), Outcome.SUCCEED)
        history.record(Instance({"a": 2, "b": "y"}), Outcome.FAIL)
        engine = ColumnarEngine(space, history)
        # The anchor's "a" value is outside the declared domain: it
        # differs from every row, which the lenient encoding models
        # without falling back.
        anchor = Instance({"a": 99, "b": "y"})
        assert engine.disjoint_successes(anchor) == history.disjoint_successes(
            anchor
        )
        assert engine.most_different_success(
            anchor
        ) == history.most_different_success(anchor)
        assert engine.success_superset_of(
            {"a": 99}
        ) == history.success_superset_of({"a": 99})

    def test_degraded_store_falls_back(self):
        space = ParameterSpace([Parameter("a", (0, 1)), Parameter("b", ("x", "y"))])
        history = ExecutionHistory()
        history.record(Instance({"a": 0, "b": "x"}), Outcome.SUCCEED)
        # Out-of-domain *row* degrades the store; scans must fall back.
        history.record(Instance({"a": 99, "b": "y"}), Outcome.SUCCEED)
        history.record(Instance({"a": 1, "b": "y"}), Outcome.FAIL)
        engine = ColumnarEngine(space, history)
        assert history.columnar_store(space).degraded
        anchor = Instance({"a": 1, "b": "y"})
        assert engine.disjoint_successes(anchor) == history.disjoint_successes(
            anchor
        )
        assert engine.most_different_success(
            anchor
        ) == history.most_different_success(anchor)
        assert engine.mutually_disjoint_successes(
            anchor
        ) == history.mutually_disjoint_successes(anchor)
        assert engine.success_superset_of(
            {"a": 99, "b": "y"}
        ) == history.success_superset_of({"a": 99, "b": "y"})

    def test_mismatched_parameter_set_replays_reference_errors(self):
        import pytest

        space = ParameterSpace([Parameter("a", (0, 1)), Parameter("b", ("x", "y"))])
        history = ExecutionHistory()
        history.record(Instance({"a": 0, "b": "x"}), Outcome.SUCCEED)
        engine = ColumnarEngine(space, history)
        anchor = Instance({"a": 1})  # missing "b"
        with pytest.raises(ValueError, match="common parameter set"):
            history.disjoint_successes(anchor)
        with pytest.raises(ValueError, match="common parameter set"):
            engine.disjoint_successes(anchor)


# ---------------------------------------------------------------------------
# Strategy-level equivalence: byte-identical reports and budgets
# ---------------------------------------------------------------------------

def _shortcut_fingerprint(result):
    return (
        str(result.cause),
        sorted(result.surviving_assignment.items(), key=repr),
        result.rejected_by_sanity_check,
        result.complete,
        result.instances_executed,
        result.final_instance,
    )


def _run_strategy(space, oracle, seed, budget, algorithm, history_size):
    history = _seeded_history(space, oracle, seed, size=history_size)
    session = DebugSession(
        oracle,
        space,
        history=history,
        budget=InstanceBudget(budget) if budget is not None else None,
    )
    return session


class TestStrategyEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        _spaces,
        st.integers(0, 2**32),
        st.sampled_from([None, 3, 12]),
        st.sampled_from(
            [Algorithm.SHORTCUT, Algorithm.STACKED_SHORTCUT]
        ),
    )
    def test_reports_identical_across_engines(
        self, space, seed, budget, algorithm
    ):
        oracle = _random_oracle(space, seed)
        fingerprints = []
        for engine in ("columnar", "reference"):
            session = _run_strategy(space, oracle, seed, budget, algorithm, 12)
            bugdoc = BugDoc(session=session, seed=seed, engine=engine)
            try:
                report = bugdoc.find_one(algorithm)
            except ValueError as error:
                fingerprints.append(("raised", str(error)))
                continue
            stacked = report.stacked_result
            fingerprints.append(
                (
                    [str(c) for c in report.causes],
                    str(report.explanation),
                    report.instances_executed,
                    report.budget_exhausted,
                    (
                        _shortcut_fingerprint(report.shortcut_result)
                        if report.shortcut_result is not None
                        else None
                    ),
                    (
                        (
                            str(stacked.cause),
                            tuple(
                                _shortcut_fingerprint(r) for r in stacked.runs
                            ),
                            stacked.failing,
                            stacked.good_instances,
                            stacked.instances_executed,
                        )
                        if stacked is not None
                        else None
                    ),
                    session.budget.spent,
                    len(session.history),
                )
            )
        assert fingerprints[0] == fingerprints[1]

    @settings(max_examples=15, deadline=None)
    @given(_spaces, st.integers(0, 2**32))
    def test_combined_reports_identical_across_engines(self, space, seed):
        oracle = _random_oracle(space, seed)
        fingerprints = []
        for engine in ("columnar", "reference"):
            session = _run_strategy(space, oracle, seed, 40, None, 10)
            bugdoc = BugDoc(session=session, seed=seed, engine=engine)
            report = bugdoc.find_all(Algorithm.COMBINED)
            fingerprints.append(
                (
                    [str(c) for c in report.causes],
                    str(report.explanation),
                    report.instances_executed,
                    report.budget_exhausted,
                    session.budget.spent,
                    len(session.history),
                )
            )
        assert fingerprints[0] == fingerprints[1]

    def test_fallback_history_identical_across_engines(self):
        # The seeded history contains a row outside the declared space:
        # the columnar store degrades, and the whole run must still be
        # byte-identical to the reference engine.
        space = ParameterSpace(
            [Parameter("a", (0, 1, 2)), Parameter("b", ("x", "y"))]
        )

        def oracle(instance):
            if instance["a"] not in (0, 1, 2):
                return Outcome.SUCCEED
            return (
                Outcome.FAIL
                if instance["a"] == 2 and instance["b"] == "y"
                else Outcome.SUCCEED
            )

        fingerprints = []
        for engine in ("columnar", "reference"):
            history = ExecutionHistory()
            history.record(Instance({"a": 7, "b": "x"}), Outcome.SUCCEED)
            history.record(Instance({"a": 2, "b": "y"}), Outcome.FAIL)
            history.record(Instance({"a": 0, "b": "x"}), Outcome.SUCCEED)
            history.record(Instance({"a": 1, "b": "y"}), Outcome.SUCCEED)
            session = DebugSession(oracle, space, history=history)
            bugdoc = BugDoc(session=session, seed=3, engine=engine)
            report = bugdoc.find_one(Algorithm.STACKED_SHORTCUT)
            stacked = report.stacked_result
            fingerprints.append(
                (
                    [str(c) for c in report.causes],
                    stacked.good_instances,
                    tuple(_shortcut_fingerprint(r) for r in stacked.runs),
                    session.budget.spent,
                    len(session.history),
                )
            )
        assert fingerprints[0] == fingerprints[1]


# ---------------------------------------------------------------------------
# The context seam itself
# ---------------------------------------------------------------------------

class TestStrategyContext:
    def test_rejects_unknown_engine(self):
        import pytest

        session = DebugSession(
            lambda i: Outcome.SUCCEED,
            ParameterSpace([Parameter("a", (0, 1))]),
        )
        with pytest.raises(ValueError, match="unknown engine"):
            StrategyContext.for_session(session, engine="warp")

    def test_reference_context_never_builds_an_engine(self):
        session = DebugSession(
            lambda i: Outcome.SUCCEED,
            ParameterSpace([Parameter("a", (0, 1))]),
        )
        context = StrategyContext.for_session(session, engine="reference")
        assert not context.columnar
        assert context.tree() is None

    def test_shared_context_reuses_one_columnar_store(self):
        space = ParameterSpace(
            [Parameter("a", (0, 1, 2)), Parameter("b", ("x", "y"))]
        )

        def oracle(instance):
            return (
                Outcome.FAIL
                if instance["a"] == 2 and instance["b"] == "y"
                else Outcome.SUCCEED
            )

        session = DebugSession(oracle, space)
        bugdoc = BugDoc(session=session, seed=0)
        bugdoc.ensure_contrasting_instances()
        context = bugdoc.strategy_context
        failing = session.history.failures[0]
        context.disjoint_successes(failing)
        store_before = session.history.columnar_store(space)
        # Strategy scans and DDT queries hit the same incremental store.
        bugdoc.find_one(Algorithm.STACKED_SHORTCUT)
        assert session.history.columnar_store(space) is store_before

    def test_explicit_context_overrides_config_engine(self):
        from repro.core.ddt import DDTConfig, debugging_decision_trees

        space = ParameterSpace(
            [Parameter("a", (0, 1, 2)), Parameter("b", ("x", "y"))]
        )

        def oracle(instance):
            return Outcome.FAIL if instance["a"] == 0 else Outcome.SUCCEED

        results = []
        for engine in ("columnar", "reference"):
            session = DebugSession(oracle, space)
            BugDoc(session=session, seed=0).ensure_contrasting_instances()
            context = StrategyContext.for_session(session, engine=engine)
            result = debugging_decision_trees(
                session, DDTConfig(find_all=True), context=context
            )
            results.append([str(c) for c in result.causes])
        assert results[0] == results[1]

    def test_select_good_instance_context_matches_reference(self):
        space = ParameterSpace(
            [Parameter("a", (0, 1, 2)), Parameter("b", ("x", "y"))]
        )

        def oracle(instance):
            return (
                Outcome.FAIL
                if instance["a"] == 0 and instance["b"] == "x"
                else Outcome.SUCCEED
            )

        session = DebugSession(oracle, space)
        BugDoc(session=session, seed=1).ensure_contrasting_instances()
        failing = session.history.failures[0]
        for engine in ("columnar", "reference"):
            context = StrategyContext.for_session(session, engine=engine)
            assert select_good_instance(
                session, failing, context=context
            ) == select_good_instance(session, failing)

    def test_bare_strategy_calls_build_default_context(self):
        space = ParameterSpace(
            [Parameter("a", (0, 1, 2)), Parameter("b", ("x", "y"))]
        )

        def oracle(instance):
            return (
                Outcome.FAIL
                if instance["a"] == 0 and instance["b"] == "x"
                else Outcome.SUCCEED
            )

        session = DebugSession(oracle, space)
        BugDoc(session=session, seed=1).ensure_contrasting_instances()
        failing = session.history.failures[0]
        good = select_good_instance(session, failing)
        assert good is not None
        result = shortcut(session, failing, good)
        assert result.final_instance is not None
        stacked = stacked_shortcut(session, failing=failing)
        assert stacked.good_instances
