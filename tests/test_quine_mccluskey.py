"""Tests for Quine-McCluskey and the multi-valued box simplifier."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Comparator,
    Conjunction,
    Disjunction,
    Parameter,
    ParameterKind,
    ParameterSpace,
    Predicate,
    minimize_boolean,
    simplify_disjunction,
)
from repro.core.quine_mccluskey import (
    _implicant_covers,
    disjunction_from_boxes,
    predicates_for_value_set,
)


def _truth_table(n_vars, implicants):
    """Evaluate a cover over all inputs."""
    outputs = set()
    for minterm in range(1 << n_vars):
        if any(_implicant_covers(imp, minterm, n_vars) for imp in implicants):
            outputs.add(minterm)
    return outputs


class TestMinimizeBoolean:
    def test_constant_false(self):
        assert minimize_boolean(3, []) == []

    def test_constant_true(self):
        implicants = minimize_boolean(2, [0, 1, 2, 3])
        assert implicants == [(None, None)]

    def test_textbook_example(self):
        # f(a,b,c,d) = sum m(4,8,10,11,12,15) with dc(9,14): classic QM demo.
        implicants = minimize_boolean(4, [4, 8, 10, 11, 12, 15], [9, 14])
        covered = _truth_table(4, implicants)
        for m in [4, 8, 10, 11, 12, 15]:
            assert m in covered
        for m in [0, 1, 2, 3, 5, 6, 7, 13]:
            assert m not in covered

    def test_out_of_range_minterm_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            minimize_boolean(2, [4])

    @settings(max_examples=120, deadline=None)
    @given(
        st.integers(2, 4),
        st.data(),
    )
    def test_cover_equals_function_property(self, n_vars, data):
        """The minimized cover equals the original function exactly on
        non-don't-care inputs and contains no fewer implicants than an
        optimal-by-absorption bound would allow (sanity: it covers)."""
        universe = list(range(1 << n_vars))
        minterms = data.draw(st.sets(st.sampled_from(universe)))
        dont_cares = data.draw(
            st.sets(st.sampled_from(universe))
        ) - set(minterms)
        implicants = minimize_boolean(n_vars, minterms, dont_cares)
        covered = _truth_table(n_vars, implicants)
        for m in minterms:
            assert m in covered
        for m in set(universe) - set(minterms) - dont_cares:
            assert m not in covered


_SPACE = ParameterSpace(
    [
        Parameter("o", (0, 1, 2, 3, 4), ParameterKind.ORDINAL),
        Parameter("k", ("r", "g", "b")),
    ]
)


class TestPredicatesForValueSet:
    def test_empty_set_rejected(self):
        with pytest.raises(ValueError, match="empty value set"):
            predicates_for_value_set(_SPACE["k"], frozenset())

    def test_out_of_domain_rejected(self):
        with pytest.raises(ValueError, match="outside domain"):
            predicates_for_value_set(_SPACE["k"], frozenset({"zzz"}))

    def test_full_domain_is_no_predicates(self):
        assert predicates_for_value_set(_SPACE["k"], frozenset("rgb")) == []

    def test_singleton_is_equality(self):
        (predicate,) = predicates_for_value_set(_SPACE["k"], frozenset({"g"}))
        assert predicate == Predicate("k", Comparator.EQ, "g")

    def test_ordinal_prefix_is_le(self):
        (predicate,) = predicates_for_value_set(_SPACE["o"], frozenset({0, 1}))
        assert predicate == Predicate("o", Comparator.LE, 1)

    def test_ordinal_suffix_is_gt(self):
        (predicate,) = predicates_for_value_set(_SPACE["o"], frozenset({3, 4}))
        assert predicate == Predicate("o", Comparator.GT, 2)

    def test_ordinal_interior_run_is_range(self):
        predicates = predicates_for_value_set(_SPACE["o"], frozenset({1, 2}))
        assert set(predicates) == {
            Predicate("o", Comparator.GT, 0),
            Predicate("o", Comparator.LE, 2),
        }

    def test_categorical_complement_is_neq(self):
        predicates = predicates_for_value_set(_SPACE["k"], frozenset({"r", "g"}))
        assert predicates == [Predicate("k", Comparator.NEQ, "b")]

    @settings(max_examples=100, deadline=None)
    @given(
        st.sampled_from(["o", "k"]),
        st.data(),
    )
    def test_encoding_is_exact_property(self, name, data):
        parameter = _SPACE[name]
        values = data.draw(
            st.sets(st.sampled_from(parameter.domain), min_size=1)
        )
        predicates = predicates_for_value_set(parameter, frozenset(values))
        conjunction = Conjunction(predicates)
        sets = conjunction.canonical(_SPACE)
        realized = sets.get(name, frozenset(parameter.domain))
        assert realized == frozenset(values)


def _conjunctions():
    def predicate_for(name):
        parameter = _SPACE[name]
        comparators = (
            list(Comparator)
            if parameter.is_ordinal
            else [Comparator.EQ, Comparator.NEQ]
        )
        return st.builds(
            Predicate,
            st.just(name),
            st.sampled_from(comparators),
            st.sampled_from(parameter.domain),
        )

    return st.builds(
        Conjunction,
        st.lists(
            st.one_of(predicate_for("o"), predicate_for("k")),
            min_size=1,
            max_size=3,
        ),
    )


class TestSimplifyDisjunction:
    def test_absorbs_subsumed_conjunct(self):
        general = Conjunction([Predicate("k", Comparator.EQ, "r")])
        specific = Conjunction(
            [
                Predicate("k", Comparator.EQ, "r"),
                Predicate("o", Comparator.EQ, 2),
            ]
        )
        simplified = simplify_disjunction(Disjunction([general, specific]), _SPACE)
        assert list(simplified) == [general]

    def test_merges_adjacent_values(self):
        parts = [
            Conjunction([Predicate("o", Comparator.EQ, 3)]),
            Conjunction([Predicate("o", Comparator.EQ, 4)]),
        ]
        simplified = simplify_disjunction(Disjunction(parts), _SPACE)
        assert len(simplified) == 1
        (merged,) = simplified
        assert merged.canonical(_SPACE) == {"o": frozenset({3, 4})}

    def test_drops_unsatisfiable_conjuncts(self):
        bad = Conjunction(
            [
                Predicate("o", Comparator.LE, 0),
                Predicate("o", Comparator.GT, 3),
            ]
        )
        good = Conjunction([Predicate("k", Comparator.EQ, "r")])
        simplified = simplify_disjunction(Disjunction([bad, good]), _SPACE)
        assert list(simplified) == [good]

    def test_complementary_split_collapses_to_true(self):
        parts = [
            Conjunction([Predicate("o", Comparator.LE, 2)]),
            Conjunction([Predicate("o", Comparator.GT, 2)]),
        ]
        simplified = simplify_disjunction(Disjunction(parts), _SPACE)
        assert len(simplified) == 1
        (merged,) = simplified
        assert merged.is_trivial()

    @settings(max_examples=80, deadline=None)
    @given(st.lists(_conjunctions(), min_size=1, max_size=4))
    def test_simplification_preserves_semantics_property(self, conjunctions):
        """The headline invariant: simplification never changes the
        satisfying set, and never increases the number of disjuncts."""
        original = Disjunction(conjunctions)
        simplified = simplify_disjunction(original, _SPACE)
        for instance in _SPACE.instances():
            assert original.satisfied_by(instance) == simplified.satisfied_by(
                instance
            ), f"semantics changed at {instance}"
        assert len(simplified) <= len(
            [c for c in conjunctions if c.is_satisfiable(_SPACE)]
        ) or len(simplified) <= len(conjunctions)


class TestBitmaskImplicants:
    """The bitmask (bits, mask) implicant representation underlying
    minimize_boolean must agree with the public tuple form exactly."""

    @settings(max_examples=120, deadline=None)
    @given(st.integers(1, 6), st.data())
    def test_pair_tuple_roundtrip_and_cover_agreement(self, n_vars, data):
        from repro.core.quine_mccluskey import _pair_sort_key, _pair_to_tuple

        universe = (1 << n_vars) - 1
        mask = data.draw(st.integers(0, universe))
        bits = data.draw(st.integers(0, universe)) & mask
        as_tuple = _pair_to_tuple(bits, mask, n_vars)
        assert len(as_tuple) == n_vars
        # Tuple covering semantics == bitmask covering semantics.
        for minterm in range(1 << n_vars):
            assert _implicant_covers(as_tuple, minterm, n_vars) == (
                (minterm & mask) == bits
            )
        # The sort key equals the reference tuple key (None -> -1).
        assert _pair_sort_key((bits, mask), n_vars) == tuple(
            -1 if literal is None else literal for literal in as_tuple
        )

    @settings(max_examples=80, deadline=None)
    @given(st.integers(2, 4), st.data())
    def test_minimized_cover_has_only_prime_combinations(self, n_vars, data):
        """Every returned implicant must cover at least one required
        minterm and nothing outside minterms + don't-cares."""
        universe = list(range(1 << n_vars))
        minterms = data.draw(st.sets(st.sampled_from(universe), min_size=1))
        dont_cares = data.draw(st.sets(st.sampled_from(universe))) - minterms
        allowed = minterms | dont_cares
        for implicant in minimize_boolean(n_vars, minterms, dont_cares):
            covered = {
                m for m in universe if _implicant_covers(implicant, m, n_vars)
            }
            assert covered <= allowed
            assert covered & minterms


def test_disjunction_from_boxes_roundtrip():
    boxes = [
        {"o": frozenset({0, 1}), "k": frozenset({"r"})},
        {"k": frozenset({"g", "b"})},
    ]
    disjunction = disjunction_from_boxes(boxes, _SPACE)
    assert len(disjunction) == 2
    for box, conjunction in zip(boxes, disjunction):
        sets = conjunction.canonical(_SPACE)
        assert sets == {
            name: values
            for name, values in box.items()
            if values != frozenset(_SPACE.domain(name))
        }
