"""Tests for workflow serialization (repro.pipeline.serialization)."""

from __future__ import annotations

import pytest

from repro.core import Instance, Parameter, ParameterKind, ParameterSpace
from repro.pipeline import Module, Workflow
from repro.pipeline.serialization import (
    ModuleRegistry,
    space_from_dict,
    space_to_dict,
    workflow_from_json,
    workflow_to_json,
)


def _space():
    return ParameterSpace(
        [
            Parameter("x", (1, 2, 3), ParameterKind.ORDINAL),
            Parameter("mode", ("sum", "max")),
            Parameter("flag", (False, True)),
        ]
    )


def _gen(x):
    return [x * i for i in range(4)]


def _agg(data, mode, flag):
    value = sum(data) if mode == "sum" else max(data)
    return value + (100 if flag else 0)


def _workflow():
    workflow = Workflow("toy", _space(), sink=("agg", "out"))
    workflow.add_module(Module("gen", _gen, parameters=("x",)))
    workflow.add_module(
        Module("agg", _agg, inputs=("data",), parameters=("mode", "flag"))
    )
    workflow.connect("gen", "out", "agg", "data")
    return workflow


def _registry():
    return ModuleRegistry({"gen": _gen, "agg": _agg})


class TestSpaceRoundtrip:
    def test_preserves_kinds_and_value_types(self):
        space = _space()
        restored = space_from_dict(space_to_dict(space))
        assert restored.names == space.names
        for name in space.names:
            assert restored.domain(name) == space.domain(name)
            assert restored[name].kind is space[name].kind
        # Typed codec: booleans stay booleans, ints stay ints.
        assert restored.domain("flag") == (False, True)
        assert type(restored.domain("x")[0]) is int


class TestWorkflowRoundtrip:
    def test_structure_survives(self):
        original = _workflow()
        restored = workflow_from_json(workflow_to_json(original), _registry())
        assert restored.name == original.name
        assert [m.name for m in restored.modules] == [
            m.name for m in original.modules
        ]
        assert restored.sink == original.sink
        assert len(restored.connections) == len(original.connections)

    def test_execution_equivalence(self):
        original = _workflow()
        restored = workflow_from_json(workflow_to_json(original), _registry())
        for instance in _space().instances():
            assert (
                restored.execute(instance).sink_value
                == original.execute(instance).sink_value
            )

    def test_missing_function_raises_with_known_names(self):
        text = workflow_to_json(_workflow())
        registry = ModuleRegistry({"gen": _gen})  # agg missing
        with pytest.raises(KeyError, match="agg.*known.*gen"):
            workflow_from_json(text, registry)

    def test_corrupt_payload_fails_validation(self):
        import json

        payload = json.loads(workflow_to_json(_workflow()))
        payload["connections"] = []  # agg's input left dangling
        from repro.pipeline.serialization import workflow_from_dict

        with pytest.raises(ValueError, match="not connected"):
            workflow_from_dict(payload, _registry())


class TestRegistry:
    def test_register_chaining_and_contains(self):
        registry = ModuleRegistry().register("f", _gen).register("g", _agg)
        assert "f" in registry and "g" in registry
        assert registry.resolve("f") is _gen

    def test_resolve_unknown(self):
        with pytest.raises(KeyError, match="not in registry"):
            ModuleRegistry().resolve("zzz")
