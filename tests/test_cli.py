"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_debug_defaults(self):
        args = build_parser().parse_args(["debug", "gan"])
        assert args.workload == "gan"
        assert args.algorithm == "combined"
        assert args.anomaly == "cpu_saturation"

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["debug", "zzz"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "dbsherlock" in out
        assert "shortcut" in out

    def test_debug_gan(self, capsys):
        code = main(
            ["debug", "gan", "--algorithm", "decision_trees", "--seed", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "asserted minimal definitive root causes" in out
        assert "lr_discriminator" in out

    def test_debug_dbsherlock_historical(self, capsys):
        code = main(
            [
                "debug",
                "dbsherlock",
                "--anomaly",
                "io_saturation",
                "--algorithm",
                "decision_trees",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "dbsherlock/io_saturation" in out

    def test_unknown_algorithm_exits(self):
        with pytest.raises(SystemExit, match="unknown algorithm"):
            main(["debug", "gan", "--algorithm", "zzz"])

    def test_synth(self, capsys):
        code = main(
            ["synth", "--scenario", "single", "--pipelines", "2", "--algorithm", "shortcut"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FindOne" in out
