"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_debug_defaults(self):
        args = build_parser().parse_args(["debug", "gan"])
        assert args.workload == "gan"
        assert args.algorithm == "combined"
        assert args.anomaly == "cpu_saturation"

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["debug", "zzz"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "dbsherlock" in out
        assert "shortcut" in out

    def test_debug_gan(self, capsys):
        code = main(
            ["debug", "gan", "--algorithm", "decision_trees", "--seed", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "asserted minimal definitive root causes" in out
        assert "lr_discriminator" in out

    def test_debug_dbsherlock_historical(self, capsys):
        code = main(
            [
                "debug",
                "dbsherlock",
                "--anomaly",
                "io_saturation",
                "--algorithm",
                "decision_trees",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "dbsherlock/io_saturation" in out

    def test_unknown_algorithm_exits(self):
        with pytest.raises(SystemExit, match="unknown algorithm"):
            main(["debug", "gan", "--algorithm", "zzz"])

    def test_debug_json_output(self, capsys):
        code = main(
            [
                "debug",
                "gan",
                "--algorithm",
                "decision_trees",
                "--seed",
                "2",
                "--output",
                "json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "gan-training"
        assert payload["algorithm"] == "decision_trees"
        assert isinstance(payload["causes"], list)
        assert payload["instances_executed"] >= 1
        assert payload["budget"]["spent"] == payload["instances_executed"]
        assert payload["budget"]["exhausted"] is False
        assert any("lr_discriminator" in cause for cause in payload["causes"])

    def test_serve_runs_concurrent_jobs(self, capsys):
        code = main(
            [
                "serve",
                "gan",
                "--replicas",
                "3",
                "--workers",
                "4",
                "--algorithm",
                "decision_trees",
                "--output",
                "json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["jobs"]) == 3
        assert all(job["status"] == "succeeded" for job in payload["jobs"])
        assert payload["service"]["cache"]["executions"] >= 1
        # Replicas share the cache: fewer pipeline executions than the
        # jobs collectively charged.
        charged = sum(job["new_executions"] for job in payload["jobs"])
        assert payload["service"]["cache"]["executions"] < charged

    def test_serve_rejects_replay_only_workload(self):
        with pytest.raises(SystemExit, match="not servable"):
            main(["serve", "dbsherlock"])

    def test_synth(self, capsys):
        code = main(
            ["synth", "--scenario", "single", "--pipelines", "2", "--algorithm", "shortcut"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FindOne" in out
