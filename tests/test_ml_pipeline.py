"""End-to-end tests for the Figure 1 ML pipeline workload.

These execute real training runs (cached per process), so the module is
kept small and focused on the paper's Tables 1-2 behaviour.
"""

from __future__ import annotations

import pytest

from repro.core import Algorithm, BugDoc, Instance, Outcome
from repro.workloads import ml_pipeline


@pytest.fixture(scope="module")
def executor():
    return ml_pipeline.make_executor()


@pytest.fixture(scope="module")
def history(executor):
    return ml_pipeline.table1_history(executor)


class TestTable1:
    def test_outcomes_match_paper(self, history):
        """Two version-1.0 runs succeed; the version-2.0 run fails."""
        outcomes = {
            instance["library_version"]: history.outcome_of(instance)
            for instance in history.instances
        }
        assert outcomes["1.0"] is Outcome.SUCCEED
        assert outcomes["2.0"] is Outcome.FAIL

    def test_scores_recorded(self, history):
        for evaluation in history:
            assert evaluation.result is not None
            assert 0.0 <= float(evaluation.result) <= 1.0


class TestExample1EndToEnd:
    def test_shortcut_reproduces_table_2(self, executor, history):
        """The full Example 1 walk-through against real training runs."""
        bugdoc = BugDoc(
            executor, ml_pipeline.make_space(), history=history.copy()
        )
        report = bugdoc.find_one(Algorithm.SHORTCUT)
        assert report.instances_executed == 2
        truth = ml_pipeline.true_cause()
        assert any(
            c.semantically_equals(truth, ml_pipeline.make_space())
            for c in report.causes
        )

    def test_stacked_agrees(self, executor, history):
        bugdoc = BugDoc(
            executor, ml_pipeline.make_space(), history=history.copy()
        )
        report = bugdoc.find_one(Algorithm.STACKED_SHORTCUT)
        truth = ml_pipeline.true_cause()
        assert any(
            c.semantically_equals(truth, ml_pipeline.make_space())
            for c in report.causes
        )


def test_version_1_runs_always_succeed(executor):
    space = ml_pipeline.make_space()
    for dataset in space.domain("dataset"):
        for estimator in space.domain("estimator"):
            instance = Instance(
                {
                    "dataset": dataset,
                    "estimator": estimator,
                    "library_version": "1.0",
                }
            )
            assert executor(instance) is Outcome.SUCCEED, dict(instance)


def test_version_2_runs_always_fail(executor):
    space = ml_pipeline.make_space()
    for dataset in space.domain("dataset"):
        for estimator in space.domain("estimator"):
            instance = Instance(
                {
                    "dataset": dataset,
                    "estimator": estimator,
                    "library_version": "2.0",
                }
            )
            assert executor(instance) is Outcome.FAIL, dict(instance)
