"""Tests for the Debugging Decision Trees search (repro.core.ddt)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Comparator,
    Conjunction,
    DDTConfig,
    DebugSession,
    ExecutionHistory,
    Instance,
    InstanceBudget,
    Outcome,
    Parameter,
    ParameterKind,
    ParameterSpace,
    Predicate,
    debugging_decision_trees,
    is_minimal_definitive_root_cause,
)


def _seeded_session(oracle, space, seed=0, n_seed=10, budget=None):
    rng = random.Random(seed)
    history = ExecutionHistory()
    draws = 0
    while (
        len(history) < n_seed or not history.failures or not history.successes
    ) and draws < 500:
        instance = space.random_instance(rng)
        draws += 1
        if instance not in history:
            history.record(instance, oracle(instance))
    return DebugSession(oracle, space, history=history, budget=budget)


class TestSingleCauses:
    def test_finds_equality_cause(self, mixed_space):
        cause = Conjunction([Predicate("b", Comparator.EQ, "z")])

        def oracle(instance):
            return Outcome.FAIL if cause.satisfied_by(instance) else Outcome.SUCCEED

        session = _seeded_session(oracle, mixed_space)
        result = debugging_decision_trees(session, DDTConfig(find_all=True))
        assert any(c.semantically_equals(cause, mixed_space) for c in result.causes)

    def test_finds_inequality_cause(self, mixed_space):
        cause = Conjunction([Predicate("a", Comparator.GT, 2)])

        def oracle(instance):
            return Outcome.FAIL if cause.satisfied_by(instance) else Outcome.SUCCEED

        session = _seeded_session(oracle, mixed_space, seed=1)
        result = debugging_decision_trees(session, DDTConfig(find_all=True))
        assert any(c.semantically_equals(cause, mixed_space) for c in result.causes)

    def test_finds_conjunction_with_inequality(self, mixed_space):
        cause = Conjunction(
            [
                Predicate("a", Comparator.GT, 2),
                Predicate("b", Comparator.EQ, "y"),
            ]
        )

        def oracle(instance):
            return Outcome.FAIL if cause.satisfied_by(instance) else Outcome.SUCCEED

        session = _seeded_session(oracle, mixed_space, seed=2, n_seed=14)
        result = debugging_decision_trees(
            session, DDTConfig(find_all=True, tests_per_suspect=20)
        )
        assert any(c.semantically_equals(cause, mixed_space) for c in result.causes)


class TestDisjunction:
    def test_finds_multiple_causes(self, mixed_space):
        causes = [
            Conjunction([Predicate("a", Comparator.EQ, 0)]),
            Conjunction(
                [
                    Predicate("b", Comparator.EQ, "z"),
                    Predicate("c", Comparator.GT, 1.0),
                ]
            ),
        ]

        def oracle(instance):
            return (
                Outcome.FAIL
                if any(c.satisfied_by(instance) for c in causes)
                else Outcome.SUCCEED
            )

        session = _seeded_session(oracle, mixed_space, seed=3, n_seed=16)
        result = debugging_decision_trees(
            session, DDTConfig(find_all=True, tests_per_suspect=24, max_rounds=80)
        )
        for cause in causes:
            assert any(
                found.semantically_equals(cause, mixed_space)
                for found in result.causes
            ), f"missing {cause}; found {[str(c) for c in result.causes]}"

    def test_find_one_stops_after_first(self, mixed_space):
        causes = [
            Conjunction([Predicate("a", Comparator.EQ, 0)]),
            Conjunction([Predicate("b", Comparator.EQ, "z")]),
        ]

        def oracle(instance):
            return (
                Outcome.FAIL
                if any(c.satisfied_by(instance) for c in causes)
                else Outcome.SUCCEED
            )

        session = _seeded_session(oracle, mixed_space, seed=4, n_seed=16)
        result = debugging_decision_trees(
            session, DDTConfig(find_all=False, tests_per_suspect=20)
        )
        assert len(result.causes) == 1


class TestRobustness:
    def test_empty_history_returns_empty(self, mixed_space):
        session = DebugSession(lambda i: Outcome.SUCCEED, mixed_space)
        result = debugging_decision_trees(session, DDTConfig(max_rounds=2))
        assert result.causes == []

    def test_budget_exhaustion_returns_partial(self, mixed_space):
        cause = Conjunction([Predicate("a", Comparator.EQ, 0)])

        def oracle(instance):
            return Outcome.FAIL if cause.satisfied_by(instance) else Outcome.SUCCEED

        session = _seeded_session(
            oracle, mixed_space, seed=5, budget=InstanceBudget(2)
        )
        result = debugging_decision_trees(session, DDTConfig(find_all=True))
        assert result.budget_exhausted or result.causes is not None
        assert session.budget.spent <= 2

    def test_explanation_never_refuted_by_history(self, mixed_space):
        cause = Conjunction([Predicate("c", Comparator.LE, 0.0)])

        def oracle(instance):
            return Outcome.FAIL if cause.satisfied_by(instance) else Outcome.SUCCEED

        session = _seeded_session(oracle, mixed_space, seed=6)
        result = debugging_decision_trees(session, DDTConfig(find_all=True))
        for found in result.causes:
            assert not session.history.refutes(found)

    def test_rounds_and_tree_sizes_recorded(self, mixed_space):
        cause = Conjunction([Predicate("a", Comparator.EQ, 1)])

        def oracle(instance):
            return Outcome.FAIL if cause.satisfied_by(instance) else Outcome.SUCCEED

        session = _seeded_session(oracle, mixed_space, seed=7)
        result = debugging_decision_trees(session)
        assert result.rounds >= 1
        assert len(result.tree_sizes) == result.rounds


class TestAblations:
    def test_simplify_off_keeps_raw_suspects(self, mixed_space):
        causes = [
            Conjunction([Predicate("a", Comparator.EQ, 0)]),
            Conjunction([Predicate("a", Comparator.EQ, 1)]),
        ]

        def oracle(instance):
            return (
                Outcome.FAIL
                if any(c.satisfied_by(instance) for c in causes)
                else Outcome.SUCCEED
            )

        session_on = _seeded_session(oracle, mixed_space, seed=8, n_seed=16)
        result_on = debugging_decision_trees(
            session_on, DDTConfig(find_all=True, simplify=True, tests_per_suspect=20)
        )
        session_off = _seeded_session(oracle, mixed_space, seed=8, n_seed=16)
        result_off = debugging_decision_trees(
            session_off,
            DDTConfig(find_all=True, simplify=False, tests_per_suspect=20),
        )
        # Simplification merges a=0 | a=1 into a <= 1: never more causes.
        assert len(result_on.causes) <= max(len(result_off.causes), 1)

    def test_minimize_confirmed_reduces_cause_length(self, mixed_space):
        cause = Conjunction([Predicate("b", Comparator.EQ, "y")])

        def oracle(instance):
            return Outcome.FAIL if cause.satisfied_by(instance) else Outcome.SUCCEED

        on = _seeded_session(oracle, mixed_space, seed=9, n_seed=12)
        result_on = debugging_decision_trees(
            on, DDTConfig(find_all=True, minimize_confirmed=True)
        )
        off = _seeded_session(oracle, mixed_space, seed=9, n_seed=12)
        result_off = debugging_decision_trees(
            off, DDTConfig(find_all=True, minimize_confirmed=False)
        )
        mean_len_on = sum(len(c) for c in result_on.causes) / max(
            len(result_on.causes), 1
        )
        mean_len_off = sum(len(c) for c in result_off.causes) / max(
            len(result_off.causes), 1
        )
        assert mean_len_on <= mean_len_off + 1e-9


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_ddt_causes_are_sound_property(seed):
    """Whatever DDT asserts with a generous test budget is a definitive
    root cause of the oracle (soundness; completeness is heuristic)."""
    rng = random.Random(seed)
    space = ParameterSpace(
        [
            Parameter("u", (0, 1, 2, 3), ParameterKind.ORDINAL),
            Parameter("v", ("p", "q", "r")),
        ]
    )
    planted = Conjunction(
        [
            Predicate("u", rng.choice([Comparator.EQ, Comparator.GT]), rng.randint(0, 2)),
            Predicate("v", Comparator.EQ, rng.choice(("p", "q", "r"))),
        ]
    )

    def oracle(instance):
        return Outcome.FAIL if planted.satisfied_by(instance) else Outcome.SUCCEED

    session = _seeded_session(oracle, space, seed=seed, n_seed=10)
    result = debugging_decision_trees(
        session,
        DDTConfig(find_all=True, tests_per_suspect=space.size(), max_rounds=40),
    )
    for cause in result.causes:
        assert is_minimal_definitive_root_cause(cause, space, oracle), str(cause)
