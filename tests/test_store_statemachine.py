"""Stateful property test: the two provenance backends stay equivalent.

A hypothesis RuleBasedStateMachine drives an in-memory store and a
SQLite store with the same operations and checks the observable state
(record count, outcome counts, value universe, history projection)
never diverges -- the classic model-based test for storage engines.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.core import Instance, Outcome
from repro.provenance import (
    InMemoryProvenanceStore,
    ProvenanceRecord,
    SQLiteProvenanceStore,
)

_VALUES = st.one_of(
    st.integers(-5, 5),
    st.sampled_from(["red", "green", "blue"]),
    st.booleans(),
)

_INSTANCES = st.dictionaries(
    st.sampled_from(["p1", "p2", "p3"]), _VALUES, min_size=1, max_size=3
)


class StoreEquivalence(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.memory = InMemoryProvenanceStore()
        self.sqlite = SQLiteProvenanceStore(":memory:")
        self.outcomes: dict[Instance, Outcome] = {}

    @rule(assignment=_INSTANCES, fail=st.booleans(), workflow=st.sampled_from(["w1", "w2"]))
    def add_record(self, assignment, fail, workflow):
        instance = Instance(assignment)
        # Keep outcomes deterministic per instance so history projection
        # (which enforces Definition 2) stays well-defined.
        outcome = self.outcomes.setdefault(
            instance, Outcome.FAIL if fail else Outcome.SUCCEED
        )
        record = ProvenanceRecord(workflow, instance, outcome)
        self.memory.add(record)
        self.sqlite.add(record)

    @invariant()
    def same_length(self):
        assert len(self.memory) == len(self.sqlite)

    @invariant()
    def same_outcome_counts(self):
        assert self.memory.count_by_outcome() == self.sqlite.count_by_outcome()

    @invariant()
    def same_universe(self):
        assert self.memory.value_universe() == self.sqlite.value_universe()

    @invariant()
    def same_history_projection(self):
        left = self.memory.to_history()
        right = self.sqlite.to_history()
        assert set(left.instances) == set(right.instances)
        assert set(left.failures) == set(right.failures)

    def teardown(self):
        self.sqlite.close()


TestStoreEquivalence = StoreEquivalence.TestCase
TestStoreEquivalence.settings = settings(
    max_examples=25, stateful_step_count=15, deadline=None
)
