"""Unit tests for the core value types (repro.core.types)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    Evaluation,
    Instance,
    Outcome,
    Parameter,
    ParameterKind,
    ParameterSpace,
)


class TestParameter:
    def test_domain_is_normalized_to_tuple(self):
        parameter = Parameter("p", [1, 2, 3], ParameterKind.ORDINAL)
        assert parameter.domain == (1, 2, 3)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            Parameter("", (1,))

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError, match="empty domain"):
            Parameter("p", ())

    def test_duplicate_values_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Parameter("p", (1, 1, 2))

    def test_ordinal_domain_must_be_sorted(self):
        with pytest.raises(ValueError, match="ascending"):
            Parameter("p", (3, 1, 2), ParameterKind.ORDINAL)

    def test_ordinal_non_comparable_rejected(self):
        with pytest.raises(ValueError, match="non-comparable"):
            Parameter("p", (1, "a"), ParameterKind.ORDINAL)

    def test_categorical_domain_order_free(self):
        parameter = Parameter("p", ("c", "a", "b"))
        assert parameter.domain == ("c", "a", "b")
        assert not parameter.is_ordinal

    def test_index_of(self):
        parameter = Parameter("p", ("a", "b", "c"))
        assert parameter.index_of("b") == 1
        with pytest.raises(ValueError, match="not in domain"):
            parameter.index_of("zzz")

    def test_contains(self):
        parameter = Parameter("p", (1, 2))
        assert 1 in parameter
        assert 9 not in parameter


class TestParameterSpace:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ParameterSpace([Parameter("p", (1,)), Parameter("p", (2,))])

    def test_names_preserve_declaration_order(self, mixed_space):
        assert mixed_space.names == ("a", "b", "c")

    def test_size_is_domain_product(self, mixed_space):
        assert mixed_space.size() == 5 * 3 * 4

    def test_instances_enumeration_is_exhaustive_and_unique(self, mixed_space):
        instances = list(mixed_space.instances())
        assert len(instances) == mixed_space.size()
        assert len(set(instances)) == mixed_space.size()

    def test_validate_accepts_good_instance(self, mixed_space):
        mixed_space.validate(Instance({"a": 0, "b": "x", "c": 1.0}))

    def test_validate_rejects_missing_parameter(self, mixed_space):
        with pytest.raises(ValueError, match="missing"):
            mixed_space.validate(Instance({"a": 0, "b": "x"}))

    def test_validate_rejects_unknown_parameter(self, mixed_space):
        with pytest.raises(ValueError, match="unknown"):
            mixed_space.validate(
                Instance({"a": 0, "b": "x", "c": 1.0, "zzz": 1})
            )

    def test_validate_rejects_out_of_domain_value(self, mixed_space):
        with pytest.raises(ValueError, match="out of domain"):
            mixed_space.validate(Instance({"a": 99, "b": "x", "c": 1.0}))

    def test_random_instance_in_space(self, mixed_space):
        rng = random.Random(0)
        for __ in range(50):
            mixed_space.validate(mixed_space.random_instance(rng))

    def test_subspace_projects(self, mixed_space):
        sub = mixed_space.subspace(["a", "c"])
        assert sub.names == ("a", "c")
        assert sub.size() == 5 * 4

    def test_mapping_protocol(self, mixed_space):
        assert len(mixed_space) == 3
        assert mixed_space["a"].is_ordinal
        assert list(mixed_space) == ["a", "b", "c"]


class TestInstance:
    def test_equality_and_hash_are_value_based(self):
        left = Instance({"a": 1, "b": 2})
        right = Instance({"b": 2, "a": 1})
        assert left == right
        assert hash(left) == hash(right)

    def test_with_value_returns_new_instance(self):
        original = Instance({"a": 1, "b": 2})
        updated = original.with_value("a", 9)
        assert original["a"] == 1
        assert updated["a"] == 9
        assert updated["b"] == 2

    def test_with_value_unknown_parameter_raises(self):
        with pytest.raises(KeyError):
            Instance({"a": 1}).with_value("zzz", 0)

    def test_hamming_distance(self):
        left = Instance({"a": 1, "b": 2, "c": 3})
        right = Instance({"a": 1, "b": 9, "c": 8})
        assert left.hamming_distance(right) == 2

    def test_disjointness_definition_6(self):
        left = Instance({"a": 1, "b": 2})
        assert left.is_disjoint_from(Instance({"a": 9, "b": 8}))
        assert not left.is_disjoint_from(Instance({"a": 1, "b": 8}))

    def test_disjointness_requires_common_parameters(self):
        with pytest.raises(ValueError, match="common parameter set"):
            Instance({"a": 1}).is_disjoint_from(Instance({"b": 1}))

    def test_restricted_to(self):
        instance = Instance({"a": 1, "b": 2, "c": 3})
        assert instance.restricted_to(["a", "c"]) == Instance({"a": 1, "c": 3})

    def test_as_dict_is_a_copy(self):
        instance = Instance({"a": 1})
        mutable = instance.as_dict()
        mutable["a"] = 99
        assert instance["a"] == 1

    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c", "d"]),
            st.integers(0, 5),
            min_size=1,
        )
    )
    def test_instance_roundtrip_property(self, values):
        instance = Instance(values)
        assert dict(instance) == values
        assert Instance(dict(instance)) == instance


class TestOutcome:
    def test_invert(self):
        assert ~Outcome.FAIL is Outcome.SUCCEED
        assert ~Outcome.SUCCEED is Outcome.FAIL

    def test_failed_flag(self):
        assert Outcome.FAIL.failed
        assert not Outcome.SUCCEED.failed


class TestEvaluation:
    def test_flags(self):
        failing = Evaluation(Instance({"a": 1}), Outcome.FAIL)
        assert failing.failed and not failing.succeeded

    def test_carries_result_and_cost(self):
        evaluation = Evaluation(
            Instance({"a": 1}), Outcome.SUCCEED, result=0.93, cost=1.5
        )
        assert evaluation.result == 0.93
        assert evaluation.cost == 1.5
