"""Shared fixtures: the paper's running example and small test spaces."""

from __future__ import annotations

import pytest

from repro.core import (
    ExecutionHistory,
    Instance,
    Outcome,
    Parameter,
    ParameterKind,
    ParameterSpace,
)


@pytest.fixture
def ml_space() -> ParameterSpace:
    """The Tables 1-2 space: Dataset x Estimator x LibraryVersion."""
    return ParameterSpace(
        [
            Parameter("dataset", ("iris", "digits", "images")),
            Parameter(
                "estimator",
                ("logistic_regression", "decision_tree", "gradient_boosting"),
            ),
            Parameter("library_version", ("1.0", "2.0")),
        ]
    )


@pytest.fixture
def ml_oracle():
    """Ground truth of Example 1: library version 2.0 always fails."""

    def oracle(instance: Instance) -> Outcome:
        return (
            Outcome.FAIL
            if instance["library_version"] == "2.0"
            else Outcome.SUCCEED
        )

    return oracle


@pytest.fixture
def table1_pairs(ml_space):
    """The paper's Table 1 provenance (three given instances)."""
    return [
        (
            Instance(
                {
                    "dataset": "iris",
                    "estimator": "logistic_regression",
                    "library_version": "1.0",
                }
            ),
            Outcome.SUCCEED,
        ),
        (
            Instance(
                {
                    "dataset": "digits",
                    "estimator": "decision_tree",
                    "library_version": "1.0",
                }
            ),
            Outcome.SUCCEED,
        ),
        (
            Instance(
                {
                    "dataset": "iris",
                    "estimator": "gradient_boosting",
                    "library_version": "2.0",
                }
            ),
            Outcome.FAIL,
        ),
    ]


@pytest.fixture
def table1_history(table1_pairs) -> ExecutionHistory:
    return ExecutionHistory.from_pairs(table1_pairs)


@pytest.fixture
def mixed_space() -> ParameterSpace:
    """A small ordinal + categorical space used across algorithm tests."""
    return ParameterSpace(
        [
            Parameter("a", (0, 1, 2, 3, 4), ParameterKind.ORDINAL),
            Parameter("b", ("x", "y", "z")),
            Parameter("c", (0.0, 0.5, 1.0, 1.5), ParameterKind.ORDINAL),
        ]
    )
