"""Cross-module property tests: invariants that must hold for *any*
algorithm output on *any* pipeline.

These are the contracts a downstream user relies on:

1. Whatever any algorithm asserts is a hypothetical root cause with
   respect to everything that was executed (Definition 3) -- evidence
   never contradicts the explanation handed to the user.
2. Cost accounting is exact: the session's charge equals the number of
   distinct new instances in its history.
3. Explanations survive the simplifier unchanged semantically.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Algorithm,
    BugDoc,
    DDTConfig,
    DebugSession,
    Disjunction,
    Outcome,
    simplify_disjunction,
)
from repro.synth import Scenario, make_suite, scenario_config, generate_pipeline


def _pipeline_for(seed: int, scenario: Scenario):
    rng = random.Random(seed)
    config = scenario_config(
        scenario,
        rng,
        min_parameters=3,
        max_parameters=4,
        min_values=5,
        max_values=6,
    )
    return generate_pipeline(f"prop-{seed}", config=config, seed=seed)


@settings(max_examples=12, deadline=None)
@given(
    st.integers(0, 10_000),
    st.sampled_from([Scenario.SINGLE_TRIPLE, Scenario.CONJUNCTION]),
)
def test_assertions_are_hypothetical_root_causes(seed, scenario):
    pipeline = _pipeline_for(seed, scenario)
    rng = random.Random(seed)
    session = DebugSession(
        pipeline.oracle,
        pipeline.space,
        history=pipeline.initial_history(rng, size=8),
    )
    bugdoc = BugDoc(session=session, seed=seed)
    report = bugdoc.find_all(
        Algorithm.DECISION_TREES,
        ddt_config=DDTConfig(find_all=True, tests_per_suspect=16, seed=seed),
    )
    for cause in report.causes:
        # Condition (ii): no executed success satisfies the cause.
        assert not session.history.refutes(cause), str(cause)
        # Condition (i): some executed failure supports it.
        assert session.history.supports(cause), str(cause)


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 10_000))
def test_cost_accounting_is_exact(seed):
    pipeline = _pipeline_for(seed, Scenario.SINGLE_TRIPLE)
    rng = random.Random(seed)
    initial = pipeline.initial_history(rng, size=6)
    initial_count = len(initial.instances)
    session = DebugSession(pipeline.oracle, pipeline.space, history=initial)
    bugdoc = BugDoc(session=session, seed=seed)
    bugdoc.find_one(Algorithm.STACKED_SHORTCUT)
    new_distinct = len(session.history.instances) - initial_count
    assert session.budget.spent == new_distinct == session.new_executions


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_explanations_survive_simplifier(seed):
    pipeline = _pipeline_for(seed, Scenario.CONJUNCTION)
    rng = random.Random(seed)
    session = DebugSession(
        pipeline.oracle,
        pipeline.space,
        history=pipeline.initial_history(rng, size=8),
    )
    report = BugDoc(session=session, seed=seed).find_all(
        Algorithm.DECISION_TREES,
        ddt_config=DDTConfig(find_all=True, tests_per_suspect=16, seed=seed),
    )
    simplified = simplify_disjunction(report.explanation, pipeline.space)
    assert simplified.semantically_equals(report.explanation, pipeline.space)


@pytest.mark.parametrize("scenario", [Scenario.SINGLE_TRIPLE, Scenario.DISJUNCTION])
def test_shortcut_assertion_inside_failing_instance(scenario):
    """Shortcut's D is a sub-assignment of CPf by construction; verify
    through the public facade on a small suite."""
    suite = make_suite(
        scenario,
        3,
        seed=91,
        min_parameters=3,
        max_parameters=4,
        min_values=5,
        max_values=6,
    )
    for pipeline in suite:
        rng = random.Random(3)
        session = DebugSession(
            pipeline.oracle,
            pipeline.space,
            history=pipeline.initial_history(rng, size=8),
        )
        bugdoc = BugDoc(session=session, seed=3)
        report = bugdoc.find_one(Algorithm.SHORTCUT)
        if not report.causes:
            continue
        failing = session.history.failures[0]
        (cause,) = report.causes
        assert cause.satisfied_by(failing)


def test_all_fail_pipeline_yields_trivial_or_empty():
    """A pipeline that always fails has no informative minimal cause;
    algorithms must not fabricate one."""
    pipeline = _pipeline_for(17, Scenario.SINGLE_TRIPLE)

    def always_fail(instance):
        return Outcome.FAIL

    session = DebugSession(always_fail, pipeline.space)
    bugdoc = BugDoc(session=session, seed=0)
    report = bugdoc.find_all(
        Algorithm.DECISION_TREES, ddt_config=DDTConfig(find_all=True, max_rounds=5)
    )
    # Either nothing asserted, or only causes no success contradicts
    # (vacuously true here) -- but never a crash.
    assert isinstance(report.explanation, Disjunction)
