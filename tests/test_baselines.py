"""Tests for SMAC, random search, Data X-Ray, and Explanation Tables."""

from __future__ import annotations

import random

from repro.baselines import (
    DataXRayConfig,
    ExplanationTablesConfig,
    SMACConfig,
    data_xray,
    explanation_tables,
    random_search,
    smac_search,
)
from repro.core import (
    Comparator,
    Conjunction,
    DebugSession,
    ExecutionHistory,
    Instance,
    InstanceBudget,
    Outcome,
    Parameter,
    ParameterKind,
    ParameterSpace,
    Predicate,
)


def _space():
    return ParameterSpace(
        [
            Parameter("a", (0, 1, 2, 3, 4), ParameterKind.ORDINAL),
            Parameter("b", ("x", "y", "z")),
            Parameter("c", (0, 1, 2), ParameterKind.ORDINAL),
        ]
    )


def _oracle(instance):
    return (
        Outcome.FAIL
        if instance["a"] >= 3 and instance["b"] == "y"
        else Outcome.SUCCEED
    )


class TestSMAC:
    def test_proposes_requested_number(self):
        session = DebugSession(_oracle, _space())
        result = smac_search(session, SMACConfig(iterations=30, seed=0))
        assert len(result.proposed) == 30
        assert result.instances_executed == 30

    def test_seeks_failures(self):
        """With a failure-seeking objective, SMAC's failure hit-rate must
        beat the base failure rate of the space.  The space must be much
        larger than the iteration count: once SMAC exhausts a finite
        space its hit rate trivially equals the base rate."""
        space = ParameterSpace(
            [
                Parameter("a", tuple(range(8)), ParameterKind.ORDINAL),
                Parameter("b", ("x", "y", "z", "w")),
                Parameter("c", tuple(range(6)), ParameterKind.ORDINAL),
            ]
        )

        def oracle(instance):
            return (
                Outcome.FAIL
                if instance["a"] >= 5 and instance["b"] == "y"
                else Outcome.SUCCEED
            )

        base_rate = sum(
            1 for i in space.instances() if oracle(i) is Outcome.FAIL
        ) / space.size()
        session = DebugSession(oracle, space)
        smac_search(session, SMACConfig(iterations=60, seed=1))
        hit_rate = len(session.history.failures) / len(session.history.instances)
        assert hit_rate > base_rate

    def test_space_exhaustion_terminates(self):
        """Requesting more proposals than distinct instances must stop."""
        session = DebugSession(_oracle, _space())
        result = smac_search(session, SMACConfig(iterations=500, seed=0))
        assert len(result.proposed) <= _space().size()

    def test_incumbent_is_failing_when_failures_exist(self):
        session = DebugSession(_oracle, _space())
        result = smac_search(session, SMACConfig(iterations=40, seed=2))
        assert result.incumbent is not None
        assert result.incumbent_cost == 0.0
        assert _oracle(result.incumbent) is Outcome.FAIL

    def test_respects_budget(self):
        session = DebugSession(_oracle, _space(), budget=InstanceBudget(10))
        result = smac_search(session, SMACConfig(iterations=50, seed=3))
        assert session.budget.spent <= 10
        assert result.instances_executed <= 10

    def test_deterministic_given_seed(self):
        first = DebugSession(_oracle, _space())
        second = DebugSession(_oracle, _space())
        r1 = smac_search(first, SMACConfig(iterations=20, seed=7))
        r2 = smac_search(second, SMACConfig(iterations=20, seed=7))
        assert r1.proposed == r2.proposed


class TestRandomSearch:
    def test_proposes_fresh_instances(self):
        session = DebugSession(_oracle, _space())
        result = random_search(session, 25, seed=0)
        assert len(result.proposed) == 25
        assert len(set(result.proposed)) == 25

    def test_respects_budget(self):
        session = DebugSession(_oracle, _space(), budget=InstanceBudget(5))
        result = random_search(session, 25, seed=1)
        assert result.instances_executed <= 5


def _history_for(oracle, space, n=80, seed=0):
    rng = random.Random(seed)
    history = ExecutionHistory()
    target = min(n, space.size())  # cannot exceed the distinct universe
    while len(history.instances) < target:
        instance = space.random_instance(rng)
        if instance not in history:
            history.record(instance, oracle(instance))
    return history


class TestDataXRay:
    def test_diagnoses_cover_failures(self):
        space = _space()
        history = _history_for(_oracle, space)
        result = data_xray(history, space)
        assert result.diagnoses
        # High recall by construction: every failure is covered.
        for failure in history.failures:
            assert any(d.satisfied_by(failure) for d in result.diagnoses)

    def test_no_failures_no_diagnoses(self):
        space = _space()
        history = _history_for(lambda i: Outcome.SUCCEED, space, n=20)
        result = data_xray(history, space)
        assert result.diagnoses == []
        assert result.recall_of_failures == 1.0

    def test_diagnoses_are_not_minimal_in_general(self):
        """The paper's observation: X-Ray over-specifies (low precision)."""
        space = _space()
        # Single-parameter cause; X-Ray's per-value partitioning splits it
        # into multiple value-specific diagnoses.
        def oracle(instance):
            return Outcome.FAIL if instance["a"] >= 3 else Outcome.SUCCEED

        history = _history_for(oracle, space, n=100, seed=4)
        result = data_xray(history, space)
        # More asserted diagnoses than the single true cause.
        assert len(result.diagnoses) >= 2

    def test_threshold_controls_refinement(self):
        space = _space()
        history = _history_for(_oracle, space, n=100, seed=5)
        strict = data_xray(history, space, DataXRayConfig(error_rate_threshold=0.999))
        loose = data_xray(history, space, DataXRayConfig(error_rate_threshold=0.5))
        mean_len_strict = sum(len(d) for d in strict.diagnoses) / len(strict.diagnoses)
        mean_len_loose = sum(len(d) for d in loose.diagnoses) / max(
            len(loose.diagnoses), 1
        )
        assert mean_len_loose <= mean_len_strict


class TestExplanationTables:
    def test_finds_high_rate_pattern(self):
        space = _space()
        history = _history_for(_oracle, space, n=120, seed=6)
        result = explanation_tables(history, space)
        causes = result.asserted_causes()
        truth = Conjunction(
            [
                Predicate("a", Comparator.GT, 2),
                Predicate("b", Comparator.EQ, "y"),
            ]
        )
        # Patterns are equality-only; each asserted cause must at least be
        # *consistent* (observed rate 1.0 in the log).
        for cause in causes:
            assert not history.refutes(cause)
        # And at least one should lie inside the true failure region.
        assert any(truth.subsumes(c, space) for c in causes)

    def test_patterns_have_support_and_rates(self):
        space = _space()
        history = _history_for(_oracle, space, n=80, seed=7)
        result = explanation_tables(history, space)
        for pattern in result.patterns:
            assert pattern.support >= 1
            assert 0.0 <= pattern.observed_rate <= 1.0
            assert pattern.gain >= 0.0

    def test_empty_history(self):
        result = explanation_tables(ExecutionHistory(), _space())
        assert result.patterns == []

    def test_max_patterns_respected(self):
        space = _space()
        history = _history_for(_oracle, space, n=80, seed=8)
        result = explanation_tables(
            history, space, ExplanationTablesConfig(max_patterns=3)
        )
        assert len(result.patterns) <= 3

    def test_no_failures_yields_no_patterns(self):
        space = _space()
        history = _history_for(lambda i: Outcome.SUCCEED, space, n=20, seed=9)
        result = explanation_tables(history, space)
        assert result.asserted_causes() == []
