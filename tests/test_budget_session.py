"""Unit tests for budget accounting and debug sessions."""

from __future__ import annotations

import pytest

from repro.core import (
    BudgetExhausted,
    DebugSession,
    ExecutionHistory,
    Instance,
    InstanceBudget,
    Outcome,
    Parameter,
    ParameterSpace,
)
from repro.core.session import InstanceUnavailable


class TestInstanceBudget:
    def test_unlimited_by_default(self):
        budget = InstanceBudget()
        budget.charge(1000)
        assert budget.spent == 1000
        assert budget.remaining is None
        assert not budget.exhausted()

    def test_limit_enforced(self):
        budget = InstanceBudget(2)
        budget.charge()
        budget.charge()
        assert budget.exhausted()
        with pytest.raises(BudgetExhausted):
            budget.charge()
        assert budget.spent == 2  # failed charge does not mutate

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            InstanceBudget(-1)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            InstanceBudget().charge(-1)

    def test_remaining(self):
        budget = InstanceBudget(5)
        budget.charge(3)
        assert budget.remaining == 2

    def test_sub_budget(self):
        budget = InstanceBudget(10)
        budget.charge(4)
        sub = budget.sub_budget(0.5)
        assert sub.limit == 3
        assert InstanceBudget().sub_budget(0.5).limit is None


def _space() -> ParameterSpace:
    return ParameterSpace([Parameter("a", (0, 1, 2)), Parameter("b", (0, 1))])


def _oracle(instance: Instance) -> Outcome:
    return Outcome.FAIL if instance["a"] == 2 else Outcome.SUCCEED


class TestDebugSession:
    def test_executes_and_records(self):
        session = DebugSession(_oracle, _space())
        outcome = session.evaluate(Instance({"a": 2, "b": 0}))
        assert outcome is Outcome.FAIL
        assert session.new_executions == 1
        assert session.history.failures == (Instance({"a": 2, "b": 0}),)

    def test_history_lookup_is_free(self):
        """The paper's cost model: previously-run instances cost nothing."""
        history = ExecutionHistory.from_pairs(
            [(Instance({"a": 2, "b": 0}), Outcome.FAIL)]
        )
        calls = []

        def counting_oracle(instance):
            calls.append(instance)
            return _oracle(instance)

        session = DebugSession(
            counting_oracle, _space(), history=history, budget=InstanceBudget(0)
        )
        assert session.evaluate(Instance({"a": 2, "b": 0})) is Outcome.FAIL
        assert not calls
        assert session.budget.spent == 0

    def test_budget_enforced(self):
        session = DebugSession(_oracle, _space(), budget=InstanceBudget(1))
        session.evaluate(Instance({"a": 0, "b": 0}))
        with pytest.raises(BudgetExhausted):
            session.evaluate(Instance({"a": 1, "b": 0}))

    def test_executor_exception_refunds_budget(self):
        def broken(instance):
            raise RuntimeError("boom")

        session = DebugSession(broken, _space(), budget=InstanceBudget(3))
        with pytest.raises(RuntimeError):
            session.evaluate(Instance({"a": 0, "b": 0}))
        assert session.budget.spent == 0
        assert session.new_executions == 0

    def test_evaluate_many_serial(self):
        session = DebugSession(_oracle, _space())
        outcomes = session.evaluate_many(
            [Instance({"a": 0, "b": 0}), Instance({"a": 2, "b": 1})]
        )
        assert outcomes == [Outcome.SUCCEED, Outcome.FAIL]

    def test_try_evaluate_maps_unavailable_to_none(self):
        def replay_only(instance):
            raise InstanceUnavailable(instance)

        session = DebugSession(replay_only, _space())
        assert session.try_evaluate(Instance({"a": 0, "b": 0})) is None

    def test_seed_loads_history_free(self):
        session = DebugSession(_oracle, _space(), budget=InstanceBudget(0))
        from repro.core import Evaluation

        session.seed([Evaluation(Instance({"a": 2, "b": 1}), Outcome.FAIL)])
        assert session.evaluate(Instance({"a": 2, "b": 1})) is Outcome.FAIL
        assert session.budget.spent == 0

    def test_not_parallel_by_default(self):
        assert DebugSession(_oracle, _space()).parallel is False
